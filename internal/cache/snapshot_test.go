package cache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/faultfs"
	"sectorpack/internal/model"
)

// populate solves and caches count distinct instances, returning their
// fingerprints and expected solutions.
func populate(t *testing.T, c *Cache, count int) ([]*Fingerprint, []model.Solution) {
	t.Helper()
	fps := make([]*Fingerprint, count)
	sols := make([]model.Solution, count)
	for k := 0; k < count; k++ {
		in := testInstance(int64(100 + k))
		opt := core.Options{Seed: 1}
		sols[k] = greedySolve(t, in, opt)
		fps[k] = mustFingerprint(t, in, opt, "greedy")
		c.Put(fps[k], sols[k])
	}
	return fps, sols
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := New(0)
	fps, sols := populate(t, c, 5)
	path := filepath.Join(t.TempDir(), "cache.snap")
	n, err := c.SaveSnapshot(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("snapshot wrote %d entries, want 5", n)
	}

	fresh := New(0)
	rep, err := fresh.LoadSnapshot(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 5 || rep.Skipped != 0 {
		t.Fatalf("load report %+v, want 5 restored / 0 skipped", rep)
	}
	for k, fp := range fps {
		got, ok := fresh.Get(fp)
		if !ok {
			t.Fatalf("entry %d missing after restore", k)
		}
		if solutionString(got) != solutionString(sols[k]) {
			t.Fatalf("entry %d drifted through snapshot:\n got  %s\n want %s",
				k, solutionString(got), solutionString(sols[k]))
		}
	}
	st := fresh.Stats()
	if st.Restored != 5 || st.Stores != 0 {
		t.Fatalf("restore metrics %+v, want Restored=5 Stores=0", st)
	}
}

func TestSnapshotPreservesLRUOrder(t *testing.T) {
	// A tiny budget cache: after restore, eviction order must match the
	// pre-snapshot recency order (oldest evicted first).
	c := New(0)
	fps, _ := populate(t, c, 3)
	// Touch entry 0 so the LRU order is 1 (oldest), 2, 0 (newest).
	if _, ok := c.Get(fps[0]); !ok {
		t.Fatal("warm entry missed")
	}
	path := filepath.Join(t.TempDir(), "cache.snap")
	if _, err := c.SaveSnapshot(faultfs.OS, path); err != nil {
		t.Fatal(err)
	}
	fresh := New(0)
	if _, err := fresh.LoadSnapshot(faultfs.OS, path); err != nil {
		t.Fatal(err)
	}
	fresh.mu.Lock()
	var order []string
	for e := fresh.ll.Back(); e != nil; e = e.Prev() {
		order = append(order, e.Value.(*entry).key)
	}
	fresh.mu.Unlock()
	want := []string{fps[1].Key(), fps[2].Key(), fps[0].Key()}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("restored LRU order %v, want %v", order, want)
		}
	}
}

func TestSnapshotRestoreNeverOverwritesLiveEntry(t *testing.T) {
	c := New(0)
	fps, sols := populate(t, c, 1)
	path := filepath.Join(t.TempDir(), "cache.snap")
	if _, err := c.SaveSnapshot(faultfs.OS, path); err != nil {
		t.Fatal(err)
	}
	// A live store for the same key lands before the (late) snapshot load;
	// the restore must not clobber it.
	fresh := New(0)
	fresh.Put(fps[0], sols[0])
	rep, err := fresh.LoadSnapshot(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 1 {
		t.Fatalf("report %+v", rep)
	}
	if st := fresh.Stats(); st.Entries != 1 || st.Stores != 1 {
		t.Fatalf("stats %+v, want one live entry", st)
	}
}

func TestSnapshotMissingFileIsColdStart(t *testing.T) {
	c := New(0)
	_, err := c.LoadSnapshot(faultfs.OS, filepath.Join(t.TempDir(), "absent.snap"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot error %v, want os.ErrNotExist", err)
	}
}

func TestSnapshotRejectsWrongVersions(t *testing.T) {
	c := New(0)
	populate(t, c, 2)
	var buf bytes.Buffer
	if _, err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xff
		if _, err := New(0).ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("snapshot-version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint64(bad[8:], snapshotVersion+1)
		if _, err := New(0).ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("future snapshot version accepted")
		}
	})
	t.Run("fingerprint-version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint64(bad[16:], fingerprintVersion+1)
		if _, err := New(0).ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("stale fingerprint version accepted; keys would alias")
		}
	})
}

// TestSnapshotCorruptEntrySkippedOthersRestored flips one byte inside the
// first entry's payload: its CRC fails, it is skipped and counted, and the
// remaining entries restore untouched.
func TestSnapshotCorruptEntrySkippedOthersRestored(t *testing.T) {
	c := New(0)
	fps, _ := populate(t, c, 3)
	var buf bytes.Buffer
	if _, err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Header is magic + 3×u64; the first frame's payload starts 8 bytes
	// after that. Flip a byte in the middle of the payload.
	headerLen := len(snapshotMagic) + 24
	plen := binary.LittleEndian.Uint32(raw[headerLen:])
	raw[headerLen+8+int(plen)/2] ^= 0x01

	fresh := New(0)
	rep, err := fresh.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 2 || rep.Skipped != 1 {
		t.Fatalf("report %+v, want 2 restored / 1 skipped", rep)
	}
	// The corrupted entry is gone; the others serve.
	restored := 0
	for _, fp := range fps {
		if _, ok := fresh.Get(fp); ok {
			restored++
		}
	}
	if restored != 2 {
		t.Fatalf("%d entries served after corruption, want 2", restored)
	}
}

// TestSnapshotTornTailSkipsRemainder truncates the file mid-frame: entries
// before the tear restore, the rest are counted skipped, and the load does
// not error (a torn snapshot is a degraded warm start, not a failure).
func TestSnapshotTornTailSkipsRemainder(t *testing.T) {
	c := New(0)
	_, _ = populate(t, c, 3)
	var buf bytes.Buffer
	if _, err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	torn := raw[:len(raw)-10]
	fresh := New(0)
	rep, err := fresh.ReadSnapshot(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 2 || rep.Skipped != 1 {
		t.Fatalf("report %+v, want 2 restored / 1 skipped", rep)
	}
}

// TestSnapshotEntriesAreCanonicallyVerifiable pins the contract the serving
// layer relies on: a restored entry, remapped into its instance's
// coordinates by Get, passes core.VerifySolution for that instance.
func TestSnapshotEntriesAreCanonicallyVerifiable(t *testing.T) {
	c := New(0)
	count := 4
	ins := make([]*model.Instance, count)
	fps := make([]*Fingerprint, count)
	for k := 0; k < count; k++ {
		ins[k] = testInstance(int64(300 + k))
		opt := core.Options{Seed: 1}
		sol := greedySolve(t, ins[k], opt)
		fps[k] = mustFingerprint(t, ins[k], opt, "greedy")
		c.Put(fps[k], sol)
	}
	path := filepath.Join(t.TempDir(), "cache.snap")
	if _, err := c.SaveSnapshot(faultfs.OS, path); err != nil {
		t.Fatal(err)
	}
	fresh := New(0)
	if _, err := fresh.LoadSnapshot(faultfs.OS, path); err != nil {
		t.Fatal(err)
	}
	for k := range ins {
		sol, ok := fresh.Get(fps[k])
		if !ok {
			t.Fatalf("entry %d missing", k)
		}
		if err := core.VerifySolution("greedy", ins[k], sol); err != nil {
			t.Fatalf("restored entry %d fails verification: %v", k, err)
		}
	}
}

// TestSnapshotCrashMatrix kills the snapshot writer at every filesystem
// operation. Invariant: after any crash, loading whatever the directory
// holds yields either the previous snapshot's entries or the new ones in
// full — never a torn file, never an error, never corrupt entries.
func TestSnapshotCrashMatrix(t *testing.T) {
	mkCache := func(n int) *Cache {
		c := New(0)
		populate(t, c, n)
		return c
	}
	// Count pass: snapshot 3 entries over an existing 2-entry snapshot.
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	if _, err := mkCache(2).SaveSnapshot(faultfs.OS, path); err != nil {
		t.Fatal(err)
	}
	counter := faultfs.NewInjector(faultfs.OS)
	if _, err := mkCache(3).SaveSnapshot(counter, path); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()

	for k := int64(1); k <= total; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "cache.snap")
		if _, err := mkCache(2).SaveSnapshot(faultfs.OS, path); err != nil {
			t.Fatal(err)
		}
		inj := faultfs.NewInjector(faultfs.OS, faultfs.Fault{N: k, Mode: faultfs.Crash})
		if _, err := mkCache(3).SaveSnapshot(inj, path); err == nil {
			t.Fatalf("crash at op %d: save reported success", k)
		}
		fresh := New(0)
		rep, err := fresh.LoadSnapshot(faultfs.OS, path)
		if err != nil {
			t.Fatalf("crash at op %d left an unloadable snapshot: %v (ops: %s)", k, err, inj)
		}
		if rep.Skipped != 0 {
			t.Fatalf("crash at op %d left corrupt entries: %+v", k, rep)
		}
		if rep.Restored != 2 && rep.Restored != 3 {
			t.Fatalf("crash at op %d: %d entries restored, want the old 2 or new 3", k, rep.Restored)
		}
	}
}

// TestSnapshotFaultCleanupKeepsServing injects plain (non-crash) errors:
// the save fails, the old snapshot survives, and the cache keeps serving.
func TestSnapshotFaultCleanup(t *testing.T) {
	for _, op := range []faultfs.Op{faultfs.OpCreateTemp, faultfs.OpWrite, faultfs.OpSync, faultfs.OpRename} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "cache.snap")
			c := New(0)
			populate(t, c, 2)
			if _, err := c.SaveSnapshot(faultfs.OS, path); err != nil {
				t.Fatal(err)
			}
			inj := faultfs.NewInjector(faultfs.OS, faultfs.Fault{Op: op, Mode: faultfs.Fail})
			if _, err := c.SaveSnapshot(inj, path); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("fault at %s: error %v", op, err)
			}
			fresh := New(0)
			rep, err := fresh.LoadSnapshot(faultfs.OS, path)
			if err != nil || rep.Restored != 2 {
				t.Fatalf("old snapshot damaged by failed save: %+v, %v", rep, err)
			}
		})
	}
}
