package cache

import (
	"container/list"
	"context"
	"expvar"
	"sync"

	"sectorpack/internal/model"
)

// DefaultMaxBytes is the cache budget when New is given zero.
const DefaultMaxBytes = 64 << 20

// Outcome reports how GetOrSolve produced its result.
type Outcome int

const (
	// Miss: no cached entry and no in-flight solve; the caller's solve
	// function ran and (on success) populated the cache.
	Miss Outcome = iota
	// Hit: served from the stored entry without solving.
	Hit
	// Collapsed: an identical solve was already in flight; this call
	// waited for it instead of solving (the singleflight path).
	Collapsed
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Collapsed:
		return "collapsed"
	default:
		return "unknown"
	}
}

// flight is one in-progress solve that concurrent identical requests
// attach to. sol is stored in canonical coordinates so followers with a
// permuted (but fingerprint-identical) instance can remap it; the fields
// are written exactly once before done is closed.
type flight struct {
	done chan struct{}
	sol  model.Solution
	ok   bool // sol is valid (solve succeeded)
	err  error
}

// entry is one stored solution, in canonical coordinates.
type entry struct {
	key  string
	sol  model.Solution
	size int64
}

// entrySize approximates an entry's memory footprint for the byte budget.
func entrySize(key string, sol model.Solution) int64 {
	size := int64(len(key)) + 128 // struct, map, and list overhead
	if sol.Assignment != nil {
		size += int64(len(sol.Assignment.Orientation))*8 + int64(len(sol.Assignment.Owner))*8
	}
	size += int64(len(sol.Algorithm) + len(sol.SolverUsed) + len(sol.FallbackReason) + len(sol.FallbackDetail))
	return size
}

// Cache is a byte-bounded LRU of verified solutions keyed by Fingerprint,
// with singleflight collapse of concurrent identical solves. All methods
// are safe for concurrent use.
type Cache struct {
	// mu guards the map/list bookkeeping. Solves themselves run outside
	// the lock.
	mu       sync.Mutex
	maxBytes int64                    // immutable after New
	bytes    int64                    // guarded by mu
	ll       *list.List               // guarded by mu (front = most recently used)
	entries  map[string]*list.Element // guarded by mu
	flights  map[string]*flight       // guarded by mu

	hits      expvar.Int // monotonic: lookups answered from the map
	misses    expvar.Int // monotonic: lookups that fell through to a solve
	evictions expvar.Int // monotonic: entries dropped under byte pressure
	collapsed expvar.Int // monotonic: callers that joined an in-flight solve
	stores    expvar.Int // monotonic: live entries inserted
	restored  expvar.Int // monotonic: entries warm-loaded from a snapshot (snapshot.go)
}

// New returns a cache bounded to maxBytes of stored solutions; zero means
// DefaultMaxBytes.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		flights:  map[string]*flight{},
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Collapsed int64 `json:"collapsed"`
	Stores    int64 `json:"stores"`
	Restored  int64 `json:"restored"`
	Bytes     int64 `json:"bytes"`
	Entries   int64 `json:"entries"`
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Collapsed: c.collapsed.Value(),
		Stores:    c.stores.Value(),
		Restored:  c.restored.Value(),
		Bytes:     c.bytes,
		Entries:   int64(c.ll.Len()),
	}
}

// NamedVar pairs an expvar with its metric name, for /debug/vars-style
// rendering by an embedding server.
type NamedVar struct {
	Name string
	Var  expvar.Var
}

// Vars returns the cache metrics as (name, expvar) pairs. The vars are not
// published to the global expvar registry (publishing panics on duplicate
// names, and tests build many caches per process).
func (c *Cache) Vars() []NamedVar {
	return []NamedVar{
		{"hits", &c.hits},
		{"misses", &c.misses},
		{"evictions", &c.evictions},
		{"collapsed", &c.collapsed},
		{"stores", &c.stores},
		{"restored", &c.restored},
		{"bytes", expvar.Func(func() any { c.mu.Lock(); defer c.mu.Unlock(); return c.bytes })},
		{"entries", expvar.Func(func() any { c.mu.Lock(); defer c.mu.Unlock(); return c.ll.Len() })},
	}
}

// Get returns the cached solution for fp, remapped into fp's instance
// coordinates, without solving. The returned assignment is freshly
// allocated — callers may mutate it freely.
func (c *Cache) Get(fp *Fingerprint) (model.Solution, bool) {
	c.mu.Lock()
	e, ok := c.entries[fp.key]
	if !ok {
		c.misses.Add(1)
		c.mu.Unlock()
		return model.Solution{}, false
	}
	c.ll.MoveToFront(e)
	sol := e.Value.(*entry).sol
	c.hits.Add(1)
	c.mu.Unlock()
	return fp.fromCanonical(sol), true
}

// Put stores a solution for fp, converting it to canonical coordinates.
// Degraded solutions are rejected: they are artifacts of one request's
// failure, not properties of the instance, and must never be replayed.
func (c *Cache) Put(fp *Fingerprint, sol model.Solution) {
	if sol.Degraded || sol.Assignment == nil {
		return
	}
	canon := fp.toCanonical(sol)
	c.mu.Lock()
	c.putLocked(fp.key, canon)
	c.mu.Unlock()
}

// Delete removes the entry for key, if present. The serving layer uses it
// to drop an entry that failed the re-verification gate.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e)
	}
	c.mu.Unlock()
}

// putLocked inserts or refreshes an entry and evicts from the LRU tail
// until the byte budget holds. An entry larger than the whole budget is
// not stored at all. counter distinguishes live stores from snapshot
// restores in the metrics.
//
//sectorlint:locked Cache.mu
func (c *Cache) putLocked(key string, canon model.Solution) {
	c.putCountedLocked(key, canon, &c.stores)
}

//sectorlint:locked Cache.mu
func (c *Cache) putCountedLocked(key string, canon model.Solution, counter *expvar.Int) {
	size := entrySize(key, canon)
	if size > c.maxBytes {
		return
	}
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e) // replacement, not eviction pressure
	}
	e := c.ll.PushFront(&entry{key: key, sol: canon, size: size})
	c.entries[key] = e
	c.bytes += size
	counter.Add(1)
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions.Add(1)
	}
}

//sectorlint:locked Cache.mu
func (c *Cache) removeLocked(e *list.Element) {
	ent := e.Value.(*entry)
	c.ll.Remove(e)
	delete(c.entries, ent.key)
	c.bytes -= ent.size
}

// GetOrSolve returns the cached solution for fp, or runs solve exactly
// once per key across concurrent callers (singleflight) and caches its
// verified result. The solve function receives the caller's ctx and must
// return a solution already gated by the caller's verification; the cache
// stores whatever a successful solve returns (except degraded solutions).
//
// On a Miss the returned solution is the solve function's result,
// untouched — bit-identical to an uncached call. On a Hit or Collapsed
// outcome the stored canonical solution is remapped into fp's coordinates.
// A follower whose ctx expires before the leader finishes returns its own
// ctx error without waiting further.
func (c *Cache) GetOrSolve(ctx context.Context, fp *Fingerprint, solve func(ctx context.Context) (model.Solution, error)) (model.Solution, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[fp.key]; ok {
		c.ll.MoveToFront(e)
		sol := e.Value.(*entry).sol
		c.hits.Add(1)
		c.mu.Unlock()
		return fp.fromCanonical(sol), Hit, nil
	}
	if fl, ok := c.flights[fp.key]; ok {
		c.collapsed.Add(1)
		c.mu.Unlock()
		select {
		case <-fl.done:
			if !fl.ok {
				return model.Solution{}, Collapsed, fl.err
			}
			return fp.fromCanonical(fl.sol), Collapsed, nil
		case <-ctx.Done():
			return model.Solution{}, Collapsed, ctx.Err()
		}
	}
	c.misses.Add(1)
	fl := &flight{done: make(chan struct{})}
	c.flights[fp.key] = fl
	c.mu.Unlock()

	sol, err := solve(ctx)
	store := err == nil && !sol.Degraded && sol.Assignment != nil
	var canon model.Solution
	if store {
		canon = fp.toCanonical(sol)
	}
	c.mu.Lock()
	delete(c.flights, fp.key)
	if store {
		c.putLocked(fp.key, canon)
	}
	c.mu.Unlock()
	if store {
		fl.sol, fl.ok = canon, true
	} else {
		fl.err = err
		if err == nil {
			// Success that is not cacheable (degraded): followers still
			// deserve the answer.
			fl.sol, fl.ok = fp.toCanonical(sol), true
		}
	}
	close(fl.done)
	return sol, Miss, err
}
