package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/model"
)

// solutionString renders a solution at full precision, the same shape as
// internal/core's determinism goldens: any drift in profit, algorithm,
// orientations, or owners shows up as a string diff.
func solutionString(sol model.Solution) string {
	return fmt.Sprintf("profit=%d alg=%s degraded=%v orient=%v owner=%v",
		sol.Profit, sol.Algorithm, sol.Degraded,
		fmt.Sprintf("%.17g", sol.Assignment.Orientation), sol.Assignment.Owner)
}

func mustFingerprint(t *testing.T, in *model.Instance, opt core.Options, solver string) *Fingerprint {
	t.Helper()
	fp, err := NewFingerprint(in, opt, solver)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func greedySolve(t *testing.T, in *model.Instance, opt core.Options) model.Solution {
	t.Helper()
	solver, err := core.Get("greedy")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestCachePutGetBitIdentical(t *testing.T) {
	in := testInstance(11)
	opt := core.Options{Seed: 1}
	sol := greedySolve(t, in, opt)
	c := New(0)
	fp := mustFingerprint(t, in, opt, "greedy")

	if _, ok := c.Get(fp); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(fp, sol)
	got, ok := c.Get(fp)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if solutionString(got) != solutionString(sol) {
		t.Fatalf("cache round trip drifted:\n got  %s\n want %s", solutionString(got), solutionString(sol))
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Stores != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("stored entry accounted zero bytes")
	}
}

func TestCacheDegradedSolutionsNotStored(t *testing.T) {
	in := testInstance(11)
	opt := core.Options{Seed: 1}
	sol := greedySolve(t, in, opt)
	sol.Degraded = true
	c := New(0)
	fp := mustFingerprint(t, in, opt, "greedy")
	c.Put(fp, sol)
	if _, ok := c.Get(fp); ok {
		t.Fatal("degraded solution was cached")
	}
}

func TestCacheLRUEvictionUnderByteBudget(t *testing.T) {
	opt := core.Options{Seed: 1}
	type stored struct {
		fp  *Fingerprint
		sol model.Solution
	}
	var items []stored
	// Budget for roughly three entries of this shape.
	probe := testInstance(100)
	probeSol := greedySolve(t, probe, opt)
	probeFP := mustFingerprint(t, probe, opt, "greedy")
	budget := 3 * entrySize(probeFP.Key(), probeSol)
	c := New(budget)

	for seed := int64(100); seed < 108; seed++ {
		in := testInstance(seed)
		fp := mustFingerprint(t, in, opt, "greedy")
		sol := greedySolve(t, in, opt)
		c.Put(fp, sol)
		items = append(items, stored{fp, sol})
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", st)
	}
	if st.Entries >= 8 {
		t.Fatalf("all entries retained despite budget: %+v", st)
	}
	// The most recently inserted entry must have survived; the oldest must
	// be gone.
	if _, ok := c.Get(items[len(items)-1].fp); !ok {
		t.Error("most recent entry was evicted")
	}
	if _, ok := c.Get(items[0].fp); ok {
		t.Error("oldest entry survived eviction pressure")
	}
}

func TestCacheDelete(t *testing.T) {
	in := testInstance(12)
	opt := core.Options{Seed: 1}
	c := New(0)
	fp := mustFingerprint(t, in, opt, "greedy")
	c.Put(fp, greedySolve(t, in, opt))
	c.Delete(fp.Key())
	if _, ok := c.Get(fp); ok {
		t.Fatal("deleted entry still served")
	}
	c.Delete(fp.Key()) // deleting a missing key is a no-op
}

func TestGetOrSolveMissThenHit(t *testing.T) {
	in := testInstance(13)
	opt := core.Options{Seed: 1}
	c := New(0)
	fp := mustFingerprint(t, in, opt, "greedy")
	var calls atomic.Int64
	solve := func(ctx context.Context) (model.Solution, error) {
		calls.Add(1)
		return greedySolve(t, in, opt), nil
	}

	first, out, err := c.GetOrSolve(context.Background(), fp, solve)
	if err != nil || out != Miss {
		t.Fatalf("first call: outcome %v err %v", out, err)
	}
	second, out, err := c.GetOrSolve(context.Background(), fp, solve)
	if err != nil || out != Hit {
		t.Fatalf("second call: outcome %v err %v", out, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("solve ran %d times, want 1", calls.Load())
	}
	if solutionString(first) != solutionString(second) {
		t.Fatalf("hit drifted from miss:\n got  %s\n want %s", solutionString(second), solutionString(first))
	}
}

func TestGetOrSolveErrorNotCached(t *testing.T) {
	in := testInstance(14)
	opt := core.Options{Seed: 1}
	c := New(0)
	fp := mustFingerprint(t, in, opt, "greedy")
	boom := errors.New("boom")
	_, out, err := c.GetOrSolve(context.Background(), fp, func(ctx context.Context) (model.Solution, error) {
		return model.Solution{}, boom
	})
	if out != Miss || !errors.Is(err, boom) {
		t.Fatalf("outcome %v err %v", out, err)
	}
	// The failure must not poison the key: the next call solves again.
	sol, out, err := c.GetOrSolve(context.Background(), fp, func(ctx context.Context) (model.Solution, error) {
		return greedySolve(t, in, opt), nil
	})
	if err != nil || out != Miss || sol.Assignment == nil {
		t.Fatalf("retry after error: outcome %v err %v", out, err)
	}
}

// TestGetOrSolveSingleflight: concurrent identical requests collapse onto
// one in-flight solve. The leader is gated on a channel until every
// follower has registered (observed via the collapsed counter), so the
// collapse is deterministic, not a race the test happens to win.
func TestGetOrSolveSingleflight(t *testing.T) {
	const followers = 24
	in := testInstance(15)
	opt := core.Options{Seed: 1}
	c := New(0)
	fp := mustFingerprint(t, in, opt, "greedy")

	release := make(chan struct{})
	var calls atomic.Int64
	solve := func(ctx context.Context) (model.Solution, error) {
		calls.Add(1)
		<-release
		return greedySolve(t, in, opt), nil
	}

	results := make([]string, followers+1)
	var wg sync.WaitGroup
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sol, _, err := c.GetOrSolve(context.Background(), fp, solve)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = solutionString(sol)
		}(i)
	}
	// Wait until every follower is parked on the flight, then release the
	// leader.
	for c.Stats().Collapsed < followers {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("underlying solve ran %d times, want 1", got)
	}
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("goroutine %d got a different solution:\n %s\n vs %s", i, r, results[0])
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Collapsed != followers {
		t.Fatalf("stats %+v, want 1 miss and %d collapsed", st, followers)
	}
}

// TestGetOrSolveFollowerHonorsOwnContext: a follower whose ctx dies while
// the leader is still solving returns its own ctx error promptly.
func TestGetOrSolveFollowerHonorsOwnContext(t *testing.T) {
	in := testInstance(16)
	opt := core.Options{Seed: 1}
	c := New(0)
	fp := mustFingerprint(t, in, opt, "greedy")

	release := make(chan struct{})
	defer close(release)
	leaderIn := make(chan struct{})
	go func() {
		c.GetOrSolve(context.Background(), fp, func(ctx context.Context) (model.Solution, error) {
			close(leaderIn)
			<-release
			return greedySolve(t, in, opt), nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.GetOrSolve(ctx, fp, func(ctx context.Context) (model.Solution, error) {
		t.Error("follower ran its own solve")
		return model.Solution{}, nil
	})
	if out != Collapsed || !errors.Is(err, context.Canceled) {
		t.Fatalf("outcome %v err %v, want Collapsed + context.Canceled", out, err)
	}
}

// TestCacheServesPermutedDuplicate: an instance that is a shuffled copy of
// a cached one hits the same key, and the remapped solution is feasible
// with identical profit.
func TestCacheServesPermutedDuplicate(t *testing.T) {
	in := testInstance(17)
	opt := core.Options{Seed: 1}
	c := New(0)
	fp := mustFingerprint(t, in, opt, "greedy")
	sol := greedySolve(t, in, opt)
	c.Put(fp, sol)

	perm := shuffleCustomers(shuffleAntennas(in, 5), 6)
	fp2 := mustFingerprint(t, perm, opt, "greedy")
	got, ok := c.Get(fp2)
	if !ok {
		t.Fatal("permuted duplicate missed")
	}
	if err := got.Assignment.Check(perm); err != nil {
		t.Fatalf("remapped hit infeasible on the permuted instance: %v", err)
	}
	if got.Assignment.Profit(perm) != sol.Profit {
		t.Fatalf("remapped profit %d != original %d", got.Assignment.Profit(perm), sol.Profit)
	}
}
