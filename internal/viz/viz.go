// Package viz renders sector-packing instances and solutions as ASCII
// polar plots for terminal inspection: the base station sits at the
// center, customers appear as the digit of the antenna serving them (or
// '.' when unserved), and each placed sector's boundary rays are drawn.
// It exists for debugging and demos, not for pixel fidelity.
package viz

import (
	"fmt"
	"math"
	"strings"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// Options controls the render.
type Options struct {
	// Width and Height are the character-grid dimensions; zero means
	// 61×31 (2:1 aspect compensates for character cells).
	Width, Height int
	// MaxR is the radius mapped to the plot edge; zero means the largest
	// customer radius (or antenna range) present.
	MaxR float64
	// Rays draws the boundary rays of each serving sector.
	Rays bool
}

func (o Options) withDefaults(in *model.Instance) Options {
	if o.Width <= 0 {
		o.Width = 61
	}
	if o.Height <= 0 {
		o.Height = 31
	}
	if o.MaxR <= 0 {
		for _, c := range in.Customers {
			if c.R > o.MaxR {
				o.MaxR = c.R
			}
		}
		for _, a := range in.Antennas {
			if !a.Unbounded() && a.Range > o.MaxR {
				o.MaxR = a.Range
			}
		}
		if o.MaxR == 0 {
			o.MaxR = 1
		}
	}
	return o
}

// Render draws the instance with an optional solution (nil for instance
// only). Customers show as their serving antenna's digit (mod 10) or '.'
// when unserved; 'B' is the base station.
func Render(in *model.Instance, as *model.Assignment, opt Options) string {
	opt = opt.withDefaults(in)
	grid := make([][]byte, opt.Height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", opt.Width))
	}
	cx, cy := opt.Width/2, opt.Height/2
	// Character cells are ~2:1 tall, so x gets double scale.
	scaleX := float64(opt.Width-1) / (2 * opt.MaxR) * 0.98
	scaleY := float64(opt.Height-1) / (2 * opt.MaxR) * 0.98 * 0.95

	plot := func(theta, r float64, ch byte) {
		x := cx + int(math.Round(r*math.Cos(theta)*scaleX))
		y := cy - int(math.Round(r*math.Sin(theta)*scaleY))
		if x >= 0 && x < opt.Width && y >= 0 && y < opt.Height {
			grid[y][x] = ch
		}
	}

	// Sector rays first so customers overwrite them.
	if opt.Rays && as != nil {
		for j, a := range in.Antennas {
			serving := false
			for _, owner := range as.Owner {
				if owner == j {
					serving = true
					break
				}
			}
			if !serving {
				continue
			}
			reach := a.EffRange()
			if math.IsInf(reach, 1) || reach > opt.MaxR {
				reach = opt.MaxR
			}
			for _, edge := range []float64{as.Orientation[j], geom.NormAngle(as.Orientation[j] + a.Rho)} {
				steps := opt.Width
				for s := 0; s <= steps; s++ {
					plot(edge, reach*float64(s)/float64(steps), '+')
				}
			}
		}
	}

	for i, c := range in.Customers {
		ch := byte('.')
		if as != nil && as.Owner[i] != model.Unassigned {
			ch = byte('0' + as.Owner[i]%10)
		}
		plot(c.Theta, c.R, ch)
	}
	grid[cy][cx] = 'B'

	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, m=%d, r<=%.1f)\n", in.Name, in.N(), in.M(), opt.MaxR)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	if as != nil {
		b.WriteString(legend(in, as))
	}
	return b.String()
}

// legend summarizes each antenna's placement under the plot.
func legend(in *model.Instance, as *model.Assignment) string {
	var b strings.Builder
	load := as.Load(in)
	for j, a := range in.Antennas {
		count := 0
		for _, owner := range as.Owner {
			if owner == j {
				count++
			}
		}
		fmt.Fprintf(&b, "  [%d] α=%6.1f° ρ=%5.1f° load %d/%d (%d customers)\n",
			j, geom.Degrees(as.Orientation[j]), geom.Degrees(a.Rho), load[j], a.Capacity, count)
	}
	return b.String()
}
