package viz

import (
	"strings"
	"testing"

	"sectorpack/internal/model"
)

func vizInstance() (*model.Instance, *model.Assignment) {
	in := &model.Instance{
		Name:    "viz-test",
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 0, R: 4, Demand: 1},
			{Theta: 1.5, R: 3, Demand: 1},
			{Theta: 3.0, R: 5, Demand: 1},
		},
		Antennas: []model.Antenna{{Rho: 1, Range: 6, Capacity: 5}},
	}
	in.Normalize()
	as := model.NewAssignment(in.N(), in.M())
	as.Orientation[0] = 0
	as.Owner[0] = 0
	return in, as
}

func TestRenderBasics(t *testing.T) {
	in, as := vizInstance()
	out := Render(in, as, Options{Rays: true})
	if !strings.Contains(out, "viz-test") {
		t.Error("render should carry the instance name")
	}
	if !strings.Contains(out, "B") {
		t.Error("base station marker missing")
	}
	if !strings.Contains(out, "0") {
		t.Error("served customer should render as its antenna digit")
	}
	if !strings.Contains(out, ".") {
		t.Error("unserved customers should render as dots")
	}
	if !strings.Contains(out, "+") {
		t.Error("sector rays missing")
	}
	if !strings.Contains(out, "load 1/5") {
		t.Error("legend missing load line")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 31 {
		t.Errorf("expected at least 31 grid lines, got %d", len(lines))
	}
}

func TestRenderInstanceOnly(t *testing.T) {
	in, _ := vizInstance()
	out := Render(in, nil, Options{})
	if strings.Contains(out, "load") {
		t.Error("no legend without a solution")
	}
	if !strings.Contains(out, ".") {
		t.Error("customers should render as dots without a solution")
	}
}

func TestRenderDeterministic(t *testing.T) {
	in, as := vizInstance()
	if Render(in, as, Options{Rays: true}) != Render(in, as, Options{Rays: true}) {
		t.Error("render must be deterministic")
	}
}

func TestRenderCustomSize(t *testing.T) {
	in, _ := vizInstance()
	out := Render(in, nil, Options{Width: 21, Height: 11})
	lines := strings.Split(out, "\n")
	// title + 11 grid rows + trailing empty
	if len(lines) != 13 {
		t.Fatalf("lines = %d, want 13", len(lines))
	}
	for _, l := range lines[1:12] {
		if len(l) != 21 {
			t.Fatalf("row width %d, want 21", len(l))
		}
	}
}

func TestRenderEmptyInstance(t *testing.T) {
	in := (&model.Instance{Name: "empty", Variant: model.Angles}).Normalize()
	out := Render(in, nil, Options{})
	if !strings.Contains(out, "B") {
		t.Error("even an empty plot shows the base station")
	}
}

func TestRenderIdleAntennaNoRays(t *testing.T) {
	in, as := vizInstance()
	as.Owner[0] = model.Unassigned // nobody served: no rays
	out := Render(in, as, Options{Rays: true})
	if strings.Contains(out, "+") {
		t.Error("idle antennas should not draw rays")
	}
}
