// Package cover solves the covering companion of sector packing: given the
// customers and one antenna type (width ρ, range R, capacity C), place the
// minimum number of antennas — orientations plus a capacity-respecting
// assignment — that serves every customer.
//
// This is the natural "dual" objective of the paper's packing problem
// [reconstruction: the paper maximizes served demand for a fixed antenna
// set; planners also ask the converse question]. With unit demands and
// unbounded capacity it is exactly minimum covering of circular points by
// arcs, which greedy covers within the usual logarithmic set-cover factor;
// with capacities the greedy remains a heuristic and the exact solver does
// iterative deepening over the antenna count.
package cover

import (
	"context"
	"fmt"

	"sectorpack/internal/angular"
	"sectorpack/internal/exact"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// AntennaType describes the single antenna model being placed.
type AntennaType struct {
	Rho      float64 // angular width (radians)
	Range    float64 // radial reach; <= 0 means unbounded
	Capacity int64   // per-antenna capacity
}

// Placement is one placed antenna: its orientation and the customers it
// serves.
type Placement struct {
	Alpha     float64
	Customers []int
}

// Result is a covering solution.
type Result struct {
	Placements []Placement
	Algorithm  string
}

// K returns the number of antennas used.
func (r Result) K() int { return len(r.Placements) }

// Check verifies that the placements serve every customer exactly once
// within coverage and capacity.
func Check(customers []model.Customer, typ AntennaType, r Result) error {
	served := make([]int, len(customers))
	ant := model.Antenna{Rho: typ.Rho, Range: typ.Range, Capacity: typ.Capacity}
	for p, pl := range r.Placements {
		var load int64
		for _, i := range pl.Customers {
			if i < 0 || i >= len(customers) {
				return fmt.Errorf("cover: placement %d serves unknown customer %d", p, i)
			}
			served[i]++
			if !ant.Covers(pl.Alpha, customers[i]) {
				return fmt.Errorf("cover: placement %d at α=%v does not cover customer %d", p, pl.Alpha, i)
			}
			load += customers[i].Demand
		}
		if load > typ.Capacity {
			return fmt.Errorf("cover: placement %d overloaded: %d > %d", p, load, typ.Capacity)
		}
	}
	for i, s := range served {
		if s == 0 {
			return fmt.Errorf("cover: customer %d unserved", i)
		}
		if s > 1 {
			return fmt.Errorf("cover: customer %d served %d times", i, s)
		}
	}
	return nil
}

// feasibilityCheck rejects instances no antenna count can cover.
func feasibilityCheck(customers []model.Customer, typ AntennaType) error {
	ant := model.Antenna{Rho: typ.Rho, Range: typ.Range, Capacity: typ.Capacity}
	for i, c := range customers {
		if !ant.InRange(c) {
			return fmt.Errorf("cover: customer %d at r=%v beyond antenna range %v", i, c.R, typ.Range)
		}
		if c.Demand > typ.Capacity {
			return fmt.Errorf("cover: customer %d demand %d exceeds antenna capacity %d", i, c.Demand, typ.Capacity)
		}
	}
	return nil
}

// Greedy covers the customers by repeatedly placing the antenna that serves
// the maximum remaining demand (best single window over the unserved set).
// For unit demands with ample capacity this is the classical greedy
// set-cover with its H_n guarantee; in general it is a heuristic. The
// number of placements never exceeds the customer count.
func Greedy(ctx context.Context, customers []model.Customer, typ AntennaType) (Result, error) {
	if err := feasibilityCheck(customers, typ); err != nil {
		return Result{}, err
	}
	res := Result{Algorithm: "greedy-cover"}
	// Wrap into an instance with one antenna; BestWindow does the heavy
	// lifting each round over the still-active customers.
	in := &model.Instance{
		Variant:   model.Sectors,
		Customers: append([]model.Customer(nil), customers...),
		Antennas:  []model.Antenna{{Rho: typ.Rho, Range: typ.Range, Capacity: typ.Capacity}},
	}
	if typ.Range <= 0 {
		in.Variant = model.Angles
	}
	in.Normalize()
	active := make([]bool, len(customers))
	remaining := len(customers)
	for i := range active {
		active[i] = true
	}
	for remaining > 0 {
		win, err := angular.BestWindow(ctx, in, 0, active, knapsack.Options{})
		if err != nil {
			return Result{}, err
		}
		if len(win.Customers) == 0 {
			return Result{}, fmt.Errorf("cover: no antenna placement serves any of the %d remaining customers", remaining)
		}
		res.Placements = append(res.Placements, Placement{Alpha: win.Alpha, Customers: win.Customers})
		for _, i := range win.Customers {
			active[i] = false
			remaining--
		}
	}
	return res, nil
}

// MaxExactCustomers bounds Exact's instance size (it leans on the packing
// exact solver, which is exponential).
const MaxExactCustomers = 12

// Exact finds the minimum antenna count by iterative deepening: for
// k = lower, lower+1, ... it asks the exact packing solver whether k
// antennas can serve the full demand. The lower bound is
// ⌈total demand / capacity⌉. maxK caps the search (0 means the customer
// count).
func Exact(ctx context.Context, customers []model.Customer, typ AntennaType, maxK int) (Result, error) {
	if err := feasibilityCheck(customers, typ); err != nil {
		return Result{}, err
	}
	if len(customers) > MaxExactCustomers {
		return Result{}, fmt.Errorf("cover: Exact limited to %d customers, got %d", MaxExactCustomers, len(customers))
	}
	res := Result{Algorithm: "exact-cover"}
	if len(customers) == 0 {
		return res, nil
	}
	if maxK <= 0 {
		maxK = len(customers)
	}
	var totalDemand, totalProfit int64
	for _, c := range customers {
		totalDemand += c.Demand
		totalProfit += c.Profit
	}
	lower := int((totalDemand + typ.Capacity - 1) / typ.Capacity)
	if lower < 1 {
		lower = 1
	}
	for k := lower; k <= maxK; k++ {
		in := &model.Instance{
			Variant:   model.Sectors,
			Customers: append([]model.Customer(nil), customers...),
		}
		if typ.Range <= 0 {
			in.Variant = model.Angles
		}
		for j := 0; j < k; j++ {
			in.Antennas = append(in.Antennas, model.Antenna{Rho: typ.Rho, Range: typ.Range, Capacity: typ.Capacity})
		}
		in.Normalize()
		sol, err := exact.Solve(ctx, in, exact.Limits{})
		if err != nil {
			return Result{}, fmt.Errorf("cover: packing feasibility at k=%d: %w", k, err)
		}
		if sol.Profit == in.TotalProfit() {
			for j := 0; j < k; j++ {
				pl := Placement{Alpha: sol.Assignment.Orientation[j]}
				for i, owner := range sol.Assignment.Owner {
					if owner == j {
						pl.Customers = append(pl.Customers, i)
					}
				}
				if len(pl.Customers) > 0 {
					res.Placements = append(res.Placements, pl)
				}
			}
			return res, nil
		}
	}
	return Result{}, fmt.Errorf("cover: no cover with at most %d antennas", maxK)
}
