package cover

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

func randCustomers(rng *rand.Rand, n int, maxR float64, maxDemand int64) []model.Customer {
	out := make([]model.Customer, n)
	for i := range out {
		out[i] = model.Customer{
			ID:     i,
			Theta:  rng.Float64() * geom.TwoPi,
			R:      rng.Float64() * maxR,
			Demand: 1 + rng.Int63n(maxDemand),
		}
		out[i].Profit = out[i].Demand
	}
	return out
}

func TestGreedyCoversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 40; trial++ {
		customers := randCustomers(rng, 1+rng.Intn(25), 8, 5)
		typ := AntennaType{Rho: 0.5 + rng.Float64(), Range: 9, Capacity: 8 + rng.Int63n(20)}
		res, err := Greedy(context.Background(), customers, typ)
		if err != nil {
			t.Fatalf("Greedy: %v", err)
		}
		if err := Check(customers, typ, res); err != nil {
			t.Fatalf("invalid cover: %v", err)
		}
		if res.K() > len(customers) {
			t.Fatalf("cover uses %d antennas for %d customers", res.K(), len(customers))
		}
	}
}

func TestExactMatchesLowerBoundLogic(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 12; trial++ {
		customers := randCustomers(rng, 1+rng.Intn(7), 6, 4)
		typ := AntennaType{Rho: 1.0 + rng.Float64(), Range: 7, Capacity: 6 + rng.Int63n(10)}
		res, err := Exact(context.Background(), customers, typ, 0)
		if err != nil {
			t.Fatalf("Exact: %v", err)
		}
		if err := Check(customers, typ, res); err != nil {
			t.Fatalf("invalid exact cover: %v", err)
		}
		// Optimality: greedy can never beat it.
		g, err := Greedy(context.Background(), customers, typ)
		if err != nil {
			t.Fatalf("Greedy: %v", err)
		}
		if g.K() < res.K() {
			t.Fatalf("greedy %d beat exact %d", g.K(), res.K())
		}
	}
}

func TestExactMinimality(t *testing.T) {
	// Two antipodal clusters, narrow antennas: needs exactly 2.
	customers := []model.Customer{
		{ID: 0, Theta: 0.1, R: 1, Demand: 1, Profit: 1},
		{ID: 1, Theta: 0.2, R: 1, Demand: 1, Profit: 1},
		{ID: 2, Theta: 3.2, R: 1, Demand: 1, Profit: 1},
		{ID: 3, Theta: 3.3, R: 1, Demand: 1, Profit: 1},
	}
	typ := AntennaType{Rho: 0.5, Range: 2, Capacity: 10}
	res, err := Exact(context.Background(), customers, typ, 0)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if res.K() != 2 {
		t.Fatalf("K = %d, want 2", res.K())
	}
}

func TestCapacityForcesSplit(t *testing.T) {
	// All customers in one narrow arc, but capacity 3 with total demand 9:
	// needs ceil(9/3)=3 antennas despite full angular overlap.
	customers := []model.Customer{
		{ID: 0, Theta: 0.1, R: 1, Demand: 3, Profit: 3},
		{ID: 1, Theta: 0.15, R: 1, Demand: 3, Profit: 3},
		{ID: 2, Theta: 0.2, R: 1, Demand: 3, Profit: 3},
	}
	typ := AntennaType{Rho: 1, Range: 2, Capacity: 3}
	res, err := Exact(context.Background(), customers, typ, 0)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d, want 3 (capacity bound)", res.K())
	}
	g, err := Greedy(context.Background(), customers, typ)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if g.K() != 3 {
		t.Fatalf("greedy K = %d, want 3", g.K())
	}
}

func TestInfeasibleInputs(t *testing.T) {
	farAway := []model.Customer{{ID: 0, Theta: 1, R: 100, Demand: 1, Profit: 1}}
	typ := AntennaType{Rho: 1, Range: 5, Capacity: 10}
	if _, err := Greedy(context.Background(), farAway, typ); err == nil || !strings.Contains(err.Error(), "range") {
		t.Errorf("out-of-range customer must fail, got %v", err)
	}
	tooBig := []model.Customer{{ID: 0, Theta: 1, R: 1, Demand: 99, Profit: 99}}
	if _, err := Exact(context.Background(), tooBig, typ, 0); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("oversized demand must fail, got %v", err)
	}
}

func TestExactGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	many := randCustomers(rng, MaxExactCustomers+1, 5, 3)
	typ := AntennaType{Rho: 1, Range: 6, Capacity: 100}
	if _, err := Exact(context.Background(), many, typ, 0); err == nil {
		t.Error("oversized Exact input must be rejected")
	}
	few := randCustomers(rng, 4, 5, 3)
	if _, err := Exact(context.Background(), few, typ, -1); err != nil {
		t.Errorf("maxK<=0 should default: %v", err)
	}
}

func TestEmptyCover(t *testing.T) {
	typ := AntennaType{Rho: 1, Range: 5, Capacity: 10}
	g, err := Greedy(context.Background(), nil, typ)
	if err != nil || g.K() != 0 {
		t.Fatalf("empty greedy: %v, %v", g, err)
	}
	e, err := Exact(context.Background(), nil, typ, 0)
	if err != nil || e.K() != 0 {
		t.Fatalf("empty exact: %v, %v", e, err)
	}
}

func TestUnboundedRangeCover(t *testing.T) {
	customers := []model.Customer{
		{ID: 0, Theta: 0.5, R: 1e6, Demand: 1, Profit: 1},
		{ID: 1, Theta: 0.6, R: 2, Demand: 1, Profit: 1},
	}
	typ := AntennaType{Rho: 1, Range: 0, Capacity: 5} // unbounded
	res, err := Greedy(context.Background(), customers, typ)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if res.K() != 1 {
		t.Fatalf("K = %d, want 1", res.K())
	}
	if err := Check(customers, typ, res); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestCheckRejectsBadCovers(t *testing.T) {
	customers := []model.Customer{{ID: 0, Theta: 0.5, R: 1, Demand: 2, Profit: 2}}
	typ := AntennaType{Rho: 1, Range: 5, Capacity: 10}
	// unserved
	if err := Check(customers, typ, Result{}); err == nil {
		t.Error("unserved customer must fail")
	}
	// double-served
	r := Result{Placements: []Placement{
		{Alpha: 0.4, Customers: []int{0}},
		{Alpha: 0.3, Customers: []int{0}},
	}}
	if err := Check(customers, typ, r); err == nil {
		t.Error("double service must fail")
	}
	// not covered
	r = Result{Placements: []Placement{{Alpha: 3, Customers: []int{0}}}}
	if err := Check(customers, typ, r); err == nil {
		t.Error("non-covering placement must fail")
	}
	// overloaded
	typ.Capacity = 1
	r = Result{Placements: []Placement{{Alpha: 0.4, Customers: []int{0}}}}
	if err := Check(customers, typ, r); err == nil {
		t.Error("overload must fail")
	}
	// unknown index
	r = Result{Placements: []Placement{{Alpha: 0.4, Customers: []int{5}}}}
	if err := Check(customers, typ, r); err == nil {
		t.Error("unknown customer must fail")
	}
}
