// Package mkp solves the multiple-knapsack problem with assignment
// restrictions: items (customers) with weights and profits, bins (antennas)
// with capacities, and an eligibility relation saying which items each bin
// may hold. In sector packing the eligibility relation is "the oriented
// sector covers the customer"; once orientations are fixed the remaining
// optimization is exactly this problem.
//
// Restricted MKP generalizes 0/1 knapsack (one bin, all eligible), so it is
// NP-hard; the package provides the greedy successive-knapsack heuristic,
// an LP relaxation with randomized rounding, local-search improvement, and
// an exact branch-and-bound for small instances.
package mkp

import (
	"fmt"

	"sectorpack/internal/knapsack"
)

// Unassigned marks an item placed in no bin.
const Unassigned = -1

// Problem is a restricted multiple-knapsack instance.
type Problem struct {
	Items      []knapsack.Item
	Capacities []int64
	// Eligible[i][j] says item i may be placed in bin j. A nil matrix
	// means every item is eligible for every bin.
	Eligible [][]bool
}

// eligible reports whether item i may enter bin j.
func (p *Problem) eligible(i, j int) bool {
	if p.Eligible == nil {
		return true
	}
	return p.Eligible[i][j]
}

// Validate checks shapes and value ranges.
func (p *Problem) Validate() error {
	n, m := len(p.Items), len(p.Capacities)
	for i, it := range p.Items {
		if it.Weight < 0 || it.Profit < 0 {
			return fmt.Errorf("mkp: item %d has negative weight or profit", i)
		}
	}
	for j, c := range p.Capacities {
		if c < 0 {
			return fmt.Errorf("mkp: bin %d has negative capacity %d", j, c)
		}
	}
	if p.Eligible != nil {
		if len(p.Eligible) != n {
			return fmt.Errorf("mkp: eligibility has %d rows, want %d", len(p.Eligible), n)
		}
		for i, row := range p.Eligible {
			if len(row) != m {
				return fmt.Errorf("mkp: eligibility row %d has %d cols, want %d", i, len(row), m)
			}
		}
	}
	return nil
}

// Result is a feasible placement: Bin[i] is the bin of item i or Unassigned.
type Result struct {
	Profit int64
	Bin    []int
}

// Check verifies feasibility of a result against the problem and that the
// reported profit matches the placement.
func (p *Problem) Check(r Result) error {
	if len(r.Bin) != len(p.Items) {
		return fmt.Errorf("mkp: result covers %d items, want %d", len(r.Bin), len(p.Items))
	}
	load := make([]int64, len(p.Capacities))
	var profit int64
	for i, b := range r.Bin {
		if b == Unassigned {
			continue
		}
		if b < 0 || b >= len(p.Capacities) {
			return fmt.Errorf("mkp: item %d in unknown bin %d", i, b)
		}
		if !p.eligible(i, b) {
			return fmt.Errorf("mkp: item %d not eligible for bin %d", i, b)
		}
		load[b] += p.Items[i].Weight
		profit += p.Items[i].Profit
	}
	for j, l := range load {
		if l > p.Capacities[j] {
			return fmt.Errorf("mkp: bin %d overloaded %d > %d", j, l, p.Capacities[j])
		}
	}
	if profit != r.Profit {
		return fmt.Errorf("mkp: reported profit %d != placement profit %d", r.Profit, profit)
	}
	return nil
}

// emptyResult returns an all-unassigned result for n items.
func emptyResult(n int) Result {
	r := Result{Bin: make([]int, n)}
	for i := range r.Bin {
		r.Bin[i] = Unassigned
	}
	return r
}
