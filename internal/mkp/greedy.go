package mkp

import (
	"sort"

	"sectorpack/internal/knapsack"
)

// GreedyOptions tunes GreedySuccessive.
type GreedyOptions struct {
	// Knapsack configures the per-bin subproblem solver.
	Knapsack knapsack.Options
	// BinOrder, when non-nil, fixes the order in which bins are filled;
	// otherwise bins are processed in decreasing capacity order.
	BinOrder []int
}

// GreedySuccessive fills bins one at a time, each with a (near-)optimal
// knapsack over the still-unassigned items eligible for that bin. With an
// exact inner solver this is the classical successive-knapsack heuristic:
// a 1/2-approximation in general and 1−(1−1/m)^m ≥ 1−1/e for identical
// bins; an FPTAS inner solver multiplies the factor by (1−ε).
func GreedySuccessive(p *Problem, opt GreedyOptions) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n, m := len(p.Items), len(p.Capacities)
	order := opt.BinOrder
	if order == nil {
		order = make([]int, m)
		for j := range order {
			order[j] = j
		}
		sort.SliceStable(order, func(a, b int) bool {
			return p.Capacities[order[a]] > p.Capacities[order[b]]
		})
	}
	res := emptyResult(n)
	for _, j := range order {
		// Collect unassigned items eligible for bin j.
		var sub []knapsack.Item
		var ids []int
		for i := 0; i < n; i++ {
			if res.Bin[i] == Unassigned && p.eligible(i, j) {
				sub = append(sub, p.Items[i])
				ids = append(ids, i)
			}
		}
		if len(sub) == 0 {
			continue
		}
		kr, _, err := knapsack.Solve(sub, p.Capacities[j], opt.Knapsack)
		if err != nil {
			return Result{}, err
		}
		for k, take := range kr.Take {
			if take {
				res.Bin[ids[k]] = j
				res.Profit += p.Items[ids[k]].Profit
			}
		}
	}
	return res, nil
}

// LocalSearch improves a feasible result by first-improvement moves until a
// local optimum or maxRounds passes: unassigned-item insertions, item
// relocations that make room for a new insertion, and pairwise swaps that
// free capacity. Returns the improved result (never worse than the input).
func LocalSearch(p *Problem, start Result, maxRounds int) (Result, error) {
	if err := p.Check(start); err != nil {
		return Result{}, err
	}
	n, m := len(p.Items), len(p.Capacities)
	res := Result{Profit: start.Profit, Bin: append([]int(nil), start.Bin...)}
	load := make([]int64, m)
	for i, b := range res.Bin {
		if b != Unassigned {
			load[b] += p.Items[i].Weight
		}
	}
	for round := 0; round < maxRounds; round++ {
		improved := false
		// Move 1: insert an unassigned item anywhere it fits.
		for i := 0; i < n; i++ {
			if res.Bin[i] != Unassigned || p.Items[i].Profit == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				if p.eligible(i, j) && load[j]+p.Items[i].Weight <= p.Capacities[j] {
					res.Bin[i] = j
					load[j] += p.Items[i].Weight
					res.Profit += p.Items[i].Profit
					improved = true
					break
				}
			}
		}
		// Move 2: swap an assigned item with a heavier-profit unassigned
		// item in the same bin.
		for i := 0; i < n; i++ {
			if res.Bin[i] != Unassigned {
				continue
			}
			for k := 0; k < n; k++ {
				b := res.Bin[k]
				if b == Unassigned || !p.eligible(i, b) {
					continue
				}
				if p.Items[i].Profit <= p.Items[k].Profit {
					continue
				}
				if load[b]-p.Items[k].Weight+p.Items[i].Weight <= p.Capacities[b] {
					load[b] += p.Items[i].Weight - p.Items[k].Weight
					res.Profit += p.Items[i].Profit - p.Items[k].Profit
					res.Bin[i] = b
					res.Bin[k] = Unassigned
					improved = true
					break
				}
			}
		}
		// Move 3: relocate an assigned item to another bin to make room
		// for an unassigned item in its old bin.
		for k := 0; k < n && !improved; k++ {
			b := res.Bin[k]
			if b == Unassigned {
				continue
			}
			for j := 0; j < m; j++ {
				if j == b || !p.eligible(k, j) || load[j]+p.Items[k].Weight > p.Capacities[j] {
					continue
				}
				// Does moving k free room for some unassigned item in b?
				freed := load[b] - p.Items[k].Weight
				for i := 0; i < n; i++ {
					if res.Bin[i] == Unassigned && p.eligible(i, b) && p.Items[i].Profit > 0 &&
						freed+p.Items[i].Weight <= p.Capacities[b] {
						res.Bin[k] = j
						load[j] += p.Items[k].Weight
						load[b] = freed + p.Items[i].Weight
						res.Bin[i] = b
						res.Profit += p.Items[i].Profit
						improved = true
						break
					}
				}
				if improved {
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return res, nil
}
