package mkp

import (
	"fmt"
	"math/rand"
	"sort"

	"sectorpack/internal/lp"
)

// LPRelax solves the fractional relaxation
//
//	max  Σ p_i x_{ij}
//	s.t. Σ_j x_{ij} ≤ 1            (each item at most once)
//	     Σ_i w_i x_{ij} ≤ C_j      (bin capacities)
//	     x ≥ 0, only eligible (i,j) pairs present
//
// returning the optimal value (an upper bound on the integral optimum) and
// the fractional solution indexed as x[i][j].
func LPRelax(p *Problem) (float64, [][]float64, error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	n, m := len(p.Items), len(p.Capacities)
	// Variable layout: one variable per eligible (i,j) pair.
	type pair struct{ i, j int }
	var pairs []pair
	varOf := make(map[pair]int)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if p.eligible(i, j) {
				varOf[pair{i, j}] = len(pairs)
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	nv := len(pairs)
	if nv == 0 {
		x := make([][]float64, n)
		for i := range x {
			x[i] = make([]float64, m)
		}
		return 0, x, nil
	}
	c := make([]float64, nv)
	for k, pr := range pairs {
		c[k] = float64(p.Items[pr.i].Profit)
	}
	var a [][]float64
	var b []float64
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		any := false
		for j := 0; j < m; j++ {
			if k, ok := varOf[pair{i, j}]; ok {
				row[k] = 1
				any = true
			}
		}
		if any {
			a = append(a, row)
			b = append(b, 1)
		}
	}
	for j := 0; j < m; j++ {
		row := make([]float64, nv)
		any := false
		for i := 0; i < n; i++ {
			if k, ok := varOf[pair{i, j}]; ok {
				row[k] = float64(p.Items[i].Weight)
				any = true
			}
		}
		if any {
			a = append(a, row)
			b = append(b, float64(p.Capacities[j]))
		}
	}
	sol, err := lp.Maximize(c, a, b)
	if err != nil {
		return 0, nil, fmt.Errorf("mkp: LP relaxation: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, nil, fmt.Errorf("mkp: LP relaxation terminated %v", sol.Status)
	}
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, m)
	}
	for k, pr := range pairs {
		x[pr.i][pr.j] = sol.X[k]
	}
	return sol.Value, x, nil
}

// RoundLP turns a fractional solution into a feasible integral one:
// randomized rounding by each item's fractional bin distribution, greedy
// repair of overloaded bins (evict lowest-density items), then a
// local-search polish. rng drives the rounding; trials > 1 keeps the best
// of several independent roundings.
func RoundLP(p *Problem, x [][]float64, rng *rand.Rand, trials int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if trials < 1 {
		trials = 1
	}
	n, m := len(p.Items), len(p.Capacities)
	best := emptyResult(n)
	for trial := 0; trial < trials; trial++ {
		res := emptyResult(n)
		load := make([]int64, m)
		// Round each item independently.
		for i := 0; i < n; i++ {
			u := rng.Float64()
			acc := 0.0
			for j := 0; j < m; j++ {
				acc += x[i][j]
				if u < acc {
					res.Bin[i] = j
					load[j] += p.Items[i].Weight
					break
				}
			}
		}
		// Repair: evict lowest-density items from overloaded bins.
		for j := 0; j < m; j++ {
			if load[j] <= p.Capacities[j] {
				continue
			}
			var members []int
			for i := 0; i < n; i++ {
				if res.Bin[i] == j {
					members = append(members, i)
				}
			}
			sort.Slice(members, func(a, b int) bool {
				ia, ib := p.Items[members[a]], p.Items[members[b]]
				// ascending density: evict the least valuable per unit first
				return ia.Profit*ib.Weight < ib.Profit*ia.Weight
			})
			for _, i := range members {
				if load[j] <= p.Capacities[j] {
					break
				}
				res.Bin[i] = Unassigned
				load[j] -= p.Items[i].Weight
			}
		}
		for i := 0; i < n; i++ {
			if res.Bin[i] != Unassigned {
				res.Profit += p.Items[i].Profit
			}
		}
		polished, err := LocalSearch(p, res, 50)
		if err != nil {
			return Result{}, err
		}
		if polished.Profit > best.Profit {
			best = polished
		}
	}
	return best, nil
}
