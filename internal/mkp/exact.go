package mkp

import (
	"fmt"

	"sectorpack/internal/knapsack"
)

// MaxExactItems bounds the instance size Exact accepts; the search is
// exponential in the item count.
const MaxExactItems = 24

// Exact solves restricted MKP optimally by depth-first search over items in
// density order, assigning each item to one of its eligible bins or to no
// bin, pruning with the single-knapsack fractional bound over the pooled
// remaining capacity (a valid relaxation: merging bins and dropping
// eligibility only enlarges the feasible set). maxNodes caps the search;
// when exhausted ok is false and the incumbent is returned.
func Exact(p *Problem, maxNodes int64) (res Result, ok bool, err error) {
	if err := p.Validate(); err != nil {
		return Result{}, false, err
	}
	n, m := len(p.Items), len(p.Capacities)
	if n > MaxExactItems {
		return Result{}, false, fmt.Errorf("mkp: Exact limited to %d items, got %d", MaxExactItems, n)
	}
	// Density order strengthens the bound early.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// simple insertion sort by density descending
	for a := 1; a < n; a++ {
		for b := a; b > 0; b-- {
			ib, ip := p.Items[order[b]], p.Items[order[b-1]]
			if ib.Profit*maxI64(ip.Weight, 1) > ip.Profit*maxI64(ib.Weight, 1) {
				order[b], order[b-1] = order[b-1], order[b]
			} else {
				break
			}
		}
	}
	sorted := make([]knapsack.Item, n)
	for k, i := range order {
		sorted[k] = p.Items[i]
	}

	best := int64(-1)
	bestBin := make([]int, n) // indexed by sorted position
	curBin := make([]int, n)
	load := make([]int64, m)
	var nodes int64
	budgetHit := false

	var dfs func(k int, curProfit int64)
	dfs = func(k int, curProfit int64) {
		nodes++
		if nodes > maxNodes {
			budgetHit = true
			return
		}
		if curProfit > best {
			best = curProfit
			copy(bestBin, curBin[:k])
			for t := k; t < n; t++ {
				bestBin[t] = Unassigned
			}
		}
		if k == n || budgetHit {
			return
		}
		// Bound: pooled-capacity fractional knapsack of the remaining items.
		var pool int64
		for j := 0; j < m; j++ {
			pool += p.Capacities[j] - load[j]
		}
		if curProfit+int64(knapsack.FractionalBound(sorted[k:], pool)) <= best {
			return
		}
		item := sorted[k]
		origIdx := order[k]
		for j := 0; j < m && !budgetHit; j++ {
			if !p.eligible(origIdx, j) || load[j]+item.Weight > p.Capacities[j] {
				continue
			}
			curBin[k] = j
			load[j] += item.Weight
			dfs(k+1, curProfit+item.Profit)
			load[j] -= item.Weight
		}
		curBin[k] = Unassigned
		dfs(k+1, curProfit)
	}
	dfs(0, 0)

	res = emptyResult(n)
	res.Profit = best
	for k, b := range bestBin {
		res.Bin[order[k]] = b
	}
	if best < 0 {
		res.Profit = 0
	}
	return res, !budgetHit, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
