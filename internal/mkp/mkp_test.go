package mkp

import (
	"math/rand"
	"testing"

	"sectorpack/internal/knapsack"
)

// bruteForce enumerates all (m+1)^n placements — the trusted oracle.
func bruteForce(p *Problem) int64 {
	n, m := len(p.Items), len(p.Capacities)
	var best int64
	assign := make([]int, n)
	load := make([]int64, m)
	var rec func(i int, profit int64)
	rec = func(i int, profit int64) {
		if profit > best {
			best = profit
		}
		if i == n {
			return
		}
		assign[i] = Unassigned
		rec(i+1, profit)
		for j := 0; j < m; j++ {
			if p.eligible(i, j) && load[j]+p.Items[i].Weight <= p.Capacities[j] {
				load[j] += p.Items[i].Weight
				assign[i] = j
				rec(i+1, profit+p.Items[i].Profit)
				load[j] -= p.Items[i].Weight
			}
		}
	}
	rec(0, 0)
	return best
}

func randomProblem(rng *rand.Rand, n, m int, withEligibility bool) *Problem {
	p := &Problem{
		Items:      make([]knapsack.Item, n),
		Capacities: make([]int64, m),
	}
	for i := range p.Items {
		p.Items[i] = knapsack.Item{Weight: 1 + rng.Int63n(15), Profit: 1 + rng.Int63n(25)}
	}
	for j := range p.Capacities {
		p.Capacities[j] = 5 + rng.Int63n(40)
	}
	if withEligibility {
		p.Eligible = make([][]bool, n)
		for i := range p.Eligible {
			p.Eligible[i] = make([]bool, m)
			any := false
			for j := range p.Eligible[i] {
				p.Eligible[i][j] = rng.Float64() < 0.7
				any = any || p.Eligible[i][j]
			}
			if !any {
				p.Eligible[i][rng.Intn(m)] = true
			}
		}
	}
	return p
}

func TestExactAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		p := randomProblem(rng, n, m, trial%2 == 0)
		want := bruteForce(p)
		res, ok, err := Exact(p, 50_000_000)
		if err != nil || !ok {
			t.Fatalf("Exact: ok=%v err=%v", ok, err)
		}
		if err := p.Check(res); err != nil {
			t.Fatalf("Exact result infeasible: %v", err)
		}
		if res.Profit != want {
			t.Fatalf("Exact = %d, want %d", res.Profit, want)
		}
	}
}

func TestGreedyFeasibleAndHalfOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		p := randomProblem(rng, n, m, trial%2 == 1)
		want := bruteForce(p)
		res, err := GreedySuccessive(p, GreedyOptions{})
		if err != nil {
			t.Fatalf("Greedy: %v", err)
		}
		if err := p.Check(res); err != nil {
			t.Fatalf("Greedy result infeasible: %v", err)
		}
		// The exact-inner-solver successive greedy is a 1/2-approximation.
		if 2*res.Profit < want {
			t.Fatalf("Greedy %d < OPT/2 (OPT=%d)", res.Profit, want)
		}
	}
}

func TestGreedyBinOrder(t *testing.T) {
	// One high-profit item eligible everywhere; filling the small bin
	// first (explicit order) must still yield a feasible result.
	p := &Problem{
		Items:      []knapsack.Item{{Weight: 10, Profit: 100}, {Weight: 2, Profit: 1}},
		Capacities: []int64{3, 12},
	}
	res, err := GreedySuccessive(p, GreedyOptions{BinOrder: []int{0, 1}})
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if err := p.Check(res); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if res.Profit != 101 {
		t.Errorf("profit = %d, want 101", res.Profit)
	}
}

func TestLPRelaxUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		m := 1 + rng.Intn(3)
		p := randomProblem(rng, n, m, trial%2 == 0)
		want := bruteForce(p)
		bound, x, err := LPRelax(p)
		if err != nil {
			t.Fatalf("LPRelax: %v", err)
		}
		if bound < float64(want)-1e-6 {
			t.Fatalf("LP bound %v < OPT %d", bound, want)
		}
		// fractional solution respects the structure
		for i := range x {
			var sum float64
			for j := range x[i] {
				if x[i][j] < -1e-9 {
					t.Fatalf("negative fraction x[%d][%d] = %v", i, j, x[i][j])
				}
				if !p.eligible(i, j) && x[i][j] > 1e-9 {
					t.Fatalf("ineligible pair (%d,%d) has mass %v", i, j, x[i][j])
				}
				sum += x[i][j]
			}
			if sum > 1+1e-6 {
				t.Fatalf("item %d fractionally assigned %v > 1", i, sum)
			}
		}
	}
}

func TestRoundLPFeasibleAndDecent(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		m := 1 + rng.Intn(3)
		p := randomProblem(rng, n, m, trial%2 == 0)
		want := bruteForce(p)
		_, x, err := LPRelax(p)
		if err != nil {
			t.Fatalf("LPRelax: %v", err)
		}
		res, err := RoundLP(p, x, rng, 5)
		if err != nil {
			t.Fatalf("RoundLP: %v", err)
		}
		if err := p.Check(res); err != nil {
			t.Fatalf("RoundLP result infeasible: %v", err)
		}
		// Rounding with local-search polish should reach at least half of
		// the optimum on these tiny instances.
		if want > 0 && 2*res.Profit < want {
			t.Fatalf("RoundLP %d < OPT/2 (OPT=%d)", res.Profit, want)
		}
	}
}

func TestLocalSearchImproves(t *testing.T) {
	p := &Problem{
		Items:      []knapsack.Item{{Weight: 5, Profit: 5}, {Weight: 5, Profit: 50}},
		Capacities: []int64{5},
	}
	// Start with the low-profit item assigned.
	start := Result{Profit: 5, Bin: []int{0, Unassigned}}
	res, err := LocalSearch(p, start, 10)
	if err != nil {
		t.Fatalf("LocalSearch: %v", err)
	}
	if res.Profit != 50 {
		t.Errorf("LocalSearch = %d, want 50 (swap move)", res.Profit)
	}
	if err := p.Check(res); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
}

func TestLocalSearchRelocation(t *testing.T) {
	// Item 0 sits in bin 0 but also fits bin 1; moving it frees bin 0 for
	// item 1 (only eligible for bin 0).
	p := &Problem{
		Items:      []knapsack.Item{{Weight: 5, Profit: 5}, {Weight: 5, Profit: 7}},
		Capacities: []int64{5, 5},
		Eligible:   [][]bool{{true, true}, {true, false}},
	}
	start := Result{Profit: 5, Bin: []int{0, Unassigned}}
	res, err := LocalSearch(p, start, 10)
	if err != nil {
		t.Fatalf("LocalSearch: %v", err)
	}
	if res.Profit != 12 {
		t.Errorf("LocalSearch = %d, want 12 (relocation move)", res.Profit)
	}
}

func TestLocalSearchRejectsInfeasibleStart(t *testing.T) {
	p := &Problem{
		Items:      []knapsack.Item{{Weight: 10, Profit: 1}},
		Capacities: []int64{5},
	}
	bad := Result{Profit: 1, Bin: []int{0}}
	if _, err := LocalSearch(p, bad, 5); err == nil {
		t.Error("infeasible start must be rejected")
	}
}

func TestValidateAndCheckErrors(t *testing.T) {
	p := &Problem{Items: []knapsack.Item{{Weight: -1, Profit: 1}}, Capacities: []int64{5}}
	if err := p.Validate(); err == nil {
		t.Error("negative weight must fail validation")
	}
	p = &Problem{Items: []knapsack.Item{{Weight: 1, Profit: 1}}, Capacities: []int64{-5}}
	if err := p.Validate(); err == nil {
		t.Error("negative capacity must fail validation")
	}
	p = &Problem{Items: []knapsack.Item{{Weight: 1, Profit: 1}}, Capacities: []int64{5}, Eligible: [][]bool{}}
	if err := p.Validate(); err == nil {
		t.Error("eligibility shape mismatch must fail validation")
	}
	good := &Problem{Items: []knapsack.Item{{Weight: 1, Profit: 1}}, Capacities: []int64{5}}
	if err := good.Check(Result{Profit: 0, Bin: []int{9}}); err == nil {
		t.Error("unknown bin must fail check")
	}
	if err := good.Check(Result{Profit: 5, Bin: []int{Unassigned}}); err == nil {
		t.Error("wrong profit must fail check")
	}
	if err := good.Check(Result{Profit: 0, Bin: []int{}}); err == nil {
		t.Error("short bin slice must fail check")
	}
}

func TestExactRejectsOversize(t *testing.T) {
	p := &Problem{
		Items:      make([]knapsack.Item, MaxExactItems+1),
		Capacities: []int64{10},
	}
	for i := range p.Items {
		p.Items[i] = knapsack.Item{Weight: 1, Profit: 1}
	}
	if _, _, err := Exact(p, 1000); err == nil {
		t.Error("oversize Exact input must be rejected")
	}
}

func TestExactBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	p := randomProblem(rng, 20, 3, false)
	res, ok, err := Exact(p, 5)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if ok {
		t.Error("5-node budget should be exhausted")
	}
	if err := p.Check(res); err != nil {
		t.Fatalf("incumbent must stay feasible: %v", err)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &Problem{}
	res, ok, err := Exact(p, 100)
	if err != nil || !ok || res.Profit != 0 {
		t.Fatalf("empty Exact: %+v ok=%v err=%v", res, ok, err)
	}
	g, err := GreedySuccessive(p, GreedyOptions{})
	if err != nil || g.Profit != 0 {
		t.Fatalf("empty Greedy: %+v err=%v", g, err)
	}
	bound, _, err := LPRelax(p)
	if err != nil || bound != 0 {
		t.Fatalf("empty LPRelax: %v err=%v", bound, err)
	}
}
