package fair

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

func checkFrac(t *testing.T, in *model.Instance, sol Solution) {
	t.Helper()
	const tol = 1e-6
	load := make([]float64, in.M())
	for i, row := range sol.Frac {
		var total float64
		for j, f := range row {
			if f < -tol {
				t.Fatalf("negative fraction x[%d][%d] = %v", i, j, f)
			}
			if f > tol && !in.Antennas[j].Covers(sol.Orientation[j], in.Customers[i]) {
				t.Fatalf("customer %d served by non-covering antenna %d", i, j)
			}
			total += f
			load[j] += f * float64(in.Customers[i].Demand)
		}
		if total > 1+tol {
			t.Fatalf("customer %d served %v > 1", i, total)
		}
	}
	for j, l := range load {
		if l > float64(in.Antennas[j].Capacity)+tol*(1+l) {
			t.Fatalf("antenna %d load %v > %d", j, l, in.Antennas[j].Capacity)
		}
	}
}

func TestFairFeasibleAndFloorsHold(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 10; trial++ {
		in := gen.MustGenerate(gen.Config{
			Family: gen.Hotspot, Variant: model.Sectors,
			Seed: rng.Int63(), N: 25, M: 3,
		})
		classes := make([]int, in.N())
		for i := range classes {
			classes[i] = i % 3
		}
		sol, err := Solve(context.Background(), in, classes, core.Options{SkipBound: true})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		checkFrac(t, in, sol)
		for cls, f := range sol.ClassFraction {
			if f < sol.MinFraction-1e-5 {
				t.Fatalf("class %d fraction %v below guaranteed floor %v", cls, f, sol.MinFraction)
			}
		}
		if sol.MinFraction < 0 || sol.MinFraction > 1+1e-9 {
			t.Fatalf("MinFraction %v outside [0,1]", sol.MinFraction)
		}
	}
}

func TestFairnessRaisesTheFloorVsEfficiency(t *testing.T) {
	// Two clusters, one big and one small, one antenna that can only point
	// at one of them: the efficiency objective abandons the small cluster
	// (floor 0); max-min splits service.
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 4}, // class 0 (big cluster)
			{Theta: 0.2, R: 1, Demand: 4}, // class 0
			{Theta: 3.2, R: 1, Demand: 4}, // class 1 (small cluster, opposite side)
		},
		Antennas: []model.Antenna{
			{Rho: 0.5, Capacity: 8},
			{Rho: 0.5, Capacity: 8},
		},
	}
	in.Normalize()
	classes := []int{0, 0, 1}
	sol, err := Solve(context.Background(), in, classes, core.Options{SkipBound: true})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	checkFrac(t, in, sol)
	// With two antennas, one can point at each cluster: floor should be 1.
	if sol.MinFraction < 1-1e-6 {
		t.Fatalf("both clusters are fully servable, floor = %v", sol.MinFraction)
	}
}

func TestFairSymmetricClassesEqualFractions(t *testing.T) {
	// Two mirror-image clusters with one antenna capacity-limited to half
	// the total: max-min must split close to evenly.
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.10, R: 1, Demand: 4},
			{Theta: 0.30, R: 1, Demand: 4},
		},
		Antennas: []model.Antenna{{Rho: 1.0, Capacity: 4}},
	}
	in.Normalize()
	classes := []int{0, 1}
	sol, err := Solve(context.Background(), in, classes, core.Options{SkipBound: true})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	checkFrac(t, in, sol)
	if math.Abs(sol.ClassFraction[0]-sol.ClassFraction[1]) > 1e-5 {
		t.Fatalf("symmetric classes should tie: %v vs %v", sol.ClassFraction[0], sol.ClassFraction[1])
	}
	if math.Abs(sol.MinFraction-0.5) > 1e-5 {
		t.Fatalf("floor should be 1/2 with half capacity, got %v", sol.MinFraction)
	}
}

func TestFairNilClassesIsEfficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(192))
	in := gen.MustGenerate(gen.Config{
		Family: gen.Uniform, Variant: model.Sectors,
		Seed: rng.Int63(), N: 15, M: 2,
	})
	sol, err := Solve(context.Background(), in, nil, core.Options{SkipBound: true})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	checkFrac(t, in, sol)
	// With a single class, step 2's value equals the splittable LP value
	// at the same orientations.
	split, err := core.SolveSplittable(context.Background(), in, core.Options{SkipBound: true})
	if err != nil {
		t.Fatalf("splittable: %v", err)
	}
	if math.Abs(sol.Value-split.Value) > 1e-4*(1+split.Value) {
		t.Fatalf("single-class fair value %v != splittable value %v", sol.Value, split.Value)
	}
}

func TestFairErrors(t *testing.T) {
	in := gen.MustGenerate(gen.Config{
		Family: gen.Uniform, Variant: model.Sectors, Seed: 1, N: 5, M: 1,
	})
	if _, err := Solve(context.Background(), in, []int{0, 1}, core.Options{}); err == nil {
		t.Error("wrong class label count must error")
	}
	if _, err := Solve(context.Background(), in, []int{0, 0, 0, 0, -1}, core.Options{}); err == nil {
		t.Error("negative class must error")
	}
	_ = geom.TwoPi
}

func TestFairEmpty(t *testing.T) {
	in := (&model.Instance{Variant: model.Angles}).Normalize()
	sol, err := Solve(context.Background(), in, nil, core.Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Value != 0 {
		t.Fatalf("empty value = %v", sol.Value)
	}
}
