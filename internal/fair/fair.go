// Package fair adds a fairness objective to sector packing: customers are
// partitioned into classes (neighborhoods, tenants, service tiers), and
// instead of maximizing total served profit the planner first maximizes
// the minimum class service fraction, then maximizes total profit subject
// to that floor.
//
// This is the natural fairness refinement of the paper's objective
// [reconstruction: coverage equity is the standard regulatory constraint
// this problem family runs into in practice]. Orientations are taken from
// the integral greedy; at fixed orientations both steps are linear
// programs over fractional assignments, solved with the in-repo simplex:
//
//	step 1:  max t   s.t. assignment polytope, served_c ≥ t·P_c ∀ classes c
//	step 2:  max Σ served  s.t. assignment polytope, served_c ≥ t*·P_c
//
// The result is fractional (demands are splittable across antennas here);
// see core.SolveSplittable for the fractional semantics.
package fair

import (
	"context"
	"fmt"

	"sectorpack/internal/core"
	"sectorpack/internal/lp"
	"sectorpack/internal/model"
)

// Solution is a fair fractional plan.
type Solution struct {
	Orientation []float64
	// Frac[i][j] is the fraction of customer i served by antenna j.
	Frac [][]float64
	// MinFraction is the guaranteed service fraction of every class.
	MinFraction float64
	// Value is the total fractional profit served.
	Value float64
	// ClassFraction[c] is the achieved service fraction per class.
	ClassFraction []float64
}

// Solve computes the max-min fair plan at greedy-chosen orientations.
// classes[i] gives customer i's class in [0, numClasses); nil means a
// single class (plain efficiency). Greedy orientations optimize profit,
// not the floor — when orientation choice matters for fairness, pick
// orientations explicitly and call SolveAt (e.g. one antenna aimed at
// each class's best window).
func Solve(ctx context.Context, in *model.Instance, classes []int, opt core.Options) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, fmt.Errorf("fair: %w", err)
	}
	greedy, err := core.SolveGreedy(ctx, in, opt)
	if err != nil {
		return Solution{}, err
	}
	return SolveAt(in, classes, greedy.Assignment.Orientation)
}

// SolveAt computes the max-min fair plan at the given fixed orientations.
func SolveAt(in *model.Instance, classes []int, orientations []float64) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, fmt.Errorf("fair: %w", err)
	}
	n, m := in.N(), in.M()
	if len(orientations) != m {
		return Solution{}, fmt.Errorf("fair: %d orientations for %d antennas", len(orientations), m)
	}
	if classes == nil {
		classes = make([]int, n)
	}
	if len(classes) != n {
		return Solution{}, fmt.Errorf("fair: %d class labels for %d customers", len(classes), n)
	}
	numClasses := 0
	for i, c := range classes {
		if c < 0 {
			return Solution{}, fmt.Errorf("fair: customer %d has negative class %d", i, c)
		}
		if c+1 > numClasses {
			numClasses = c + 1
		}
	}
	sol := Solution{Orientation: append([]float64(nil), orientations...)}
	if n == 0 || m == 0 {
		sol.Frac = make([][]float64, n)
		sol.ClassFraction = make([]float64, numClasses)
		return sol, nil
	}

	// Class profit totals; empty classes are trivially at fraction 1.
	classTotal := make([]float64, numClasses)
	for i, c := range in.Customers {
		classTotal[classes[i]] += float64(c.Profit)
	}

	// Variable layout: one x_{ij} per eligible pair, then t (step 1 only).
	type pair struct{ i, j int }
	var pairs []pair
	for i, c := range in.Customers {
		for j, a := range in.Antennas {
			if a.Covers(sol.Orientation[j], c) {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	nv := len(pairs)

	baseRows := func(extra int) ([][]float64, []float64) {
		var a [][]float64
		var b []float64
		// per-customer: Σ_j x_ij ≤ 1
		perCust := make(map[int][]float64)
		for k, pr := range pairs {
			row, ok := perCust[pr.i]
			if !ok {
				row = make([]float64, nv+extra)
				perCust[pr.i] = row
			}
			row[k] = 1
		}
		for i := 0; i < n; i++ {
			if row, ok := perCust[i]; ok {
				a = append(a, row)
				b = append(b, 1)
			}
		}
		// per-antenna capacity: Σ_i d_i x_ij ≤ C_j
		perAnt := make([][]float64, m)
		for j := range perAnt {
			perAnt[j] = make([]float64, nv+extra)
		}
		for k, pr := range pairs {
			perAnt[pr.j][k] = float64(in.Customers[pr.i].Demand)
		}
		for j := 0; j < m; j++ {
			a = append(a, perAnt[j])
			b = append(b, float64(in.Antennas[j].Capacity))
		}
		return a, b
	}

	// Step 1: maximize t with served_c ≥ t·P_c, i.e.
	// t·P_c − Σ_{i∈c} p_i x_ij ≤ 0, and t ≤ 1.
	a1, b1 := baseRows(1)
	tVar := nv
	for cls := 0; cls < numClasses; cls++ {
		if classTotal[cls] == 0 {
			continue
		}
		row := make([]float64, nv+1)
		row[tVar] = classTotal[cls]
		for k, pr := range pairs {
			if classes[pr.i] == cls {
				row[k] = -float64(in.Customers[pr.i].Profit)
			}
		}
		a1 = append(a1, row)
		b1 = append(b1, 0)
	}
	capT := make([]float64, nv+1)
	capT[tVar] = 1
	a1 = append(a1, capT)
	b1 = append(b1, 1)
	obj1 := make([]float64, nv+1)
	obj1[tVar] = 1
	s1, err := lp.Maximize(obj1, a1, b1)
	if err != nil {
		return Solution{}, fmt.Errorf("fair: step-1 LP: %w", err)
	}
	if s1.Status != lp.Optimal {
		return Solution{}, fmt.Errorf("fair: step-1 LP %v", s1.Status)
	}
	tStar := s1.Value

	// Step 2: maximize total profit with served_c ≥ (t*−slack)·P_c.
	const slack = 1e-7
	a2, b2 := baseRows(0)
	for cls := 0; cls < numClasses; cls++ {
		if classTotal[cls] == 0 {
			continue
		}
		row := make([]float64, nv)
		for k, pr := range pairs {
			if classes[pr.i] == cls {
				row[k] = -float64(in.Customers[pr.i].Profit)
			}
		}
		a2 = append(a2, row)
		b2 = append(b2, -(tStar-slack)*classTotal[cls])
	}
	obj2 := make([]float64, nv)
	for k, pr := range pairs {
		obj2[k] = float64(in.Customers[pr.i].Profit)
	}
	s2, err := lp.Maximize(obj2, a2, b2)
	if err != nil {
		return Solution{}, fmt.Errorf("fair: step-2 LP: %w", err)
	}
	if s2.Status != lp.Optimal {
		return Solution{}, fmt.Errorf("fair: step-2 LP %v", s2.Status)
	}

	sol.MinFraction = tStar
	sol.Value = s2.Value
	sol.Frac = make([][]float64, n)
	for i := range sol.Frac {
		sol.Frac[i] = make([]float64, m)
	}
	served := make([]float64, numClasses)
	for k, pr := range pairs {
		sol.Frac[pr.i][pr.j] = s2.X[k]
		served[classes[pr.i]] += s2.X[k] * float64(in.Customers[pr.i].Profit)
	}
	sol.ClassFraction = make([]float64, numClasses)
	for cls := range sol.ClassFraction {
		if classTotal[cls] == 0 {
			sol.ClassFraction[cls] = 1
		} else {
			sol.ClassFraction[cls] = served[cls] / classTotal[cls]
		}
	}
	return sol, nil
}
