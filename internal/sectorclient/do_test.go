// Tests for the raw Do routing hook and the backoff/Retry-After plumbing
// under it (ISSUE 9 satellites): seeded jitter must be deterministic so
// fleet tests can pin delays, both RFC 9110 Retry-After forms must floor
// the backoff, and cancellation mid-retry must return the daemon's last
// honest answer instead of losing it.
package sectorclient

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffSeededJitterDeterministic(t *testing.T) {
	mk := func(seed int64) *Client {
		return New("http://localhost:0", Options{
			BaseDelay: 50 * time.Millisecond,
			MaxDelay:  time.Second,
			Rand:      rand.New(rand.NewSource(seed)),
		})
	}
	a, b := mk(42), mk(42)
	for i := 0; i < 8; i++ {
		da, db := a.backoff(i, 0), b.backoff(i, 0)
		if da != db {
			t.Fatalf("retry %d: same seed diverged: %v vs %v", i, da, db)
		}
		// Equal jitter: the delay lives in [window/2, window].
		window := 50 * time.Millisecond << uint(i)
		if window <= 0 || window > time.Second {
			window = time.Second
		}
		if da < window/2 || da > window {
			t.Errorf("retry %d: delay %v outside [%v, %v]", i, da, window/2, window)
		}
	}
	c := mk(7)
	diverged := false
	for i := 0; i < 8; i++ {
		if c.backoff(i, 0) != a.backoff(i, 0) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical 8-delay sequences")
	}
}

func TestBackoffFloorsOnRetryAfter(t *testing.T) {
	c := New("http://localhost:0", Options{
		BaseDelay: time.Millisecond,
		MaxDelay:  2 * time.Millisecond,
		Rand:      rand.New(rand.NewSource(1)),
	})
	floor := 250 * time.Millisecond
	if d := c.backoff(0, floor); d < floor {
		t.Errorf("backoff %v below the Retry-After floor %v", d, floor)
	}
}

func TestParseRetryAfterBothForms(t *testing.T) {
	if got := parseRetryAfter("3"); got != 3*time.Second {
		t.Errorf("delta-seconds: got %v, want 3s", got)
	}
	future := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got <= 0 || got > 5*time.Second {
		t.Errorf("HTTP-date 5s ahead: got %v, want in (0, 5s]", got)
	}
	for _, v := range []string{"", "-2", "soon", time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)} {
		if got := parseRetryAfter(v); got != 0 {
			t.Errorf("parseRetryAfter(%q) = %v, want 0 (no floor)", v, got)
		}
	}
}

func TestDoReturnsNon2xxVerbatim(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Sectord-Shard", "s1")
		http.Error(w, `{"error":"bad instance"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{Rand: rand.New(rand.NewSource(1))})
	resp, err := c.Do(context.Background(), http.MethodPost, "/solve", []byte("{}"), true)
	if err != nil {
		t.Fatalf("Do returned error for a 400: %v (the hook must pass statuses through)", err)
	}
	if resp.Status != http.StatusBadRequest || resp.Attempts != 1 {
		t.Errorf("status %d attempts %d, want 400 after exactly 1 attempt", resp.Status, resp.Attempts)
	}
	if got := resp.Header.Get("X-Sectord-Shard"); got != "s1" {
		t.Errorf("shard header %q did not survive the hook", got)
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"profit":7}`))
	}))
	defer ts.Close()
	c := New(ts.URL, Options{
		BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		Rand: rand.New(rand.NewSource(1)),
	})
	resp, err := c.Do(context.Background(), http.MethodPost, "/solve", []byte("{}"), true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || resp.Attempts != 3 {
		t.Errorf("status %d attempts %d, want 200 on attempt 3", resp.Status, resp.Attempts)
	}
}

func TestDoExhaustionReturnsLastShedResponse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{
		MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		Rand: rand.New(rand.NewSource(1)),
	})
	resp, err := c.Do(context.Background(), http.MethodPost, "/solve", []byte("{}"), true)
	if err != nil {
		t.Fatalf("exhausted retries must return the last 429, not an error: %v", err)
	}
	if resp.Status != http.StatusTooManyRequests || resp.Attempts != 3 {
		t.Errorf("status %d attempts %d, want 429 after 3 attempts", resp.Status, resp.Attempts)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("the daemon's Retry-After hint was dropped; proxies need it to pass shed semantics through")
	}
}

func TestDoCancelMidBackoffReturnsLastResponse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A long Retry-After floors the backoff, so the context is always
		// cancelled during the sleep, never mid-request.
		w.Header().Set("Retry-After", "30")
		http.Error(w, "shed", http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{Rand: rand.New(rand.NewSource(1))})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, err := c.Do(ctx, http.MethodPost, "/solve", []byte("{}"), true)
	if err != nil {
		t.Fatalf("cancel mid-backoff must return the last response, got error: %v", err)
	}
	if resp.Status != http.StatusTooManyRequests {
		t.Errorf("status %d, want the shed 429 observed before cancellation", resp.Status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Do slept %v after cancellation; the 30s floor must not be served out", elapsed)
	}
}

func TestDoNetworkFailureIsAnError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listening: every attempt is a transport failure
	c := New(ts.URL, Options{
		MaxRetries: 1, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		Rand: rand.New(rand.NewSource(1)),
	})
	resp, err := c.Do(context.Background(), http.MethodPost, "/solve", []byte("{}"), true)
	if err == nil {
		t.Fatalf("transport failure returned a response (%+v); proxies key failover on the error", resp)
	}
}

func TestTypedPathCancelMidRetry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"shed"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{Rand: rand.New(rand.NewSource(1))})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.do(ctx, http.MethodPost, ts.URL+"/solve", []byte("{}"), true)
	if err == nil {
		t.Fatal("typed path must surface an error on cancellation")
	}
	if ctx.Err() == nil {
		t.Fatal("test bug: context not cancelled")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("do slept %v; cancellation must interrupt the Retry-After floor", elapsed)
	}
}
