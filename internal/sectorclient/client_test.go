package sectorclient

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func fastOptions() Options {
	return Options{
		MaxRetries: 4,
		BaseDelay:  time.Millisecond,
		MaxDelay:   4 * time.Millisecond,
		Rand:       rand.New(rand.NewSource(7)),
	}
}

func testInstance() *model.Instance {
	return gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 9, N: 12, M: 2})
}

func solveJSON(profit int64) []byte {
	b, _ := json.Marshal(map[string]any{
		"solver": "greedy", "algorithm": "greedy", "profit": profit,
		"orientation": []float64{0.5, 1.5}, "owner": []int{0, 1}, "elapsed_ms": 0.1,
	})
	return b
}

func TestSolveRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"shedding load"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-Sectord-Cache", "miss")
		w.Write(solveJSON(42))
	}))
	defer ts.Close()

	c := New(ts.URL, fastOptions())
	res, err := c.Solve(context.Background(), "greedy", testInstance(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profit != 42 || res.Attempts != 3 || res.CacheStatus != "miss" {
		t.Fatalf("profit=%d attempts=%d cache=%q, want 42/3/miss", res.Profit, res.Attempts, res.CacheStatus)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestSolveDoesNotRetryTerminalStatus(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown solver \"nope\""}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOptions())
	_, err := c.Solve(context.Background(), "nope", testInstance(), SolveOptions{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want APIError 400, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 was retried: %d calls", got)
	}
}

func TestRetriesExhaust(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"still shedding"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	opt := fastOptions()
	opt.MaxRetries = 2
	c := New(ts.URL, opt)
	_, err := c.Solve(context.Background(), "greedy", testInstance(), SolveOptions{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("want wrapped APIError 503, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 1 + 2 retries", got)
	}
}

func TestCreateSessionIsNeverRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"session table full"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOptions())
	_, _, err := c.CreateSession(context.Background(), "greedy", testInstance(), SolveOptions{})
	if err == nil {
		t.Fatal("want error from failed create")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("non-idempotent POST /session was retried: %d calls", got)
	}
}

// TestApplyDeltaIdempotencyKeys pins the retry-safety mechanism: every
// logical ApplyDelta call carries one fresh key, and all HTTP retries of
// that call reuse it byte-for-byte.
func TestApplyDeltaIdempotencyKeys(t *testing.T) {
	var calls atomic.Int64
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			IdempotencyKey string `json:"idempotency_key"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		keys = append(keys, req.IdempotencyKey)
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"flaky"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write(solveJSON(7))
	}))
	defer ts.Close()

	c := New(ts.URL, fastOptions())
	sess := &Session{c: c, ID: "s-1"}
	if _, err := sess.ApplyDelta(context.Background(), model.Delta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ApplyDelta(context.Background(), model.Delta{}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("server saw %d delta posts, want 3 (retry + 2 logical)", len(keys))
	}
	if keys[0] == "" {
		t.Fatal("delta sent without idempotency key")
	}
	if keys[0] != keys[1] {
		t.Fatalf("retry changed the idempotency key: %q then %q", keys[0], keys[1])
	}
	if keys[2] == keys[1] {
		t.Fatal("second logical delta reused the first delta's key")
	}
}

func TestCloseSessionTreats404AsSuccess(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown session"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOptions())
	sess := &Session{c: c, ID: "gone"}
	if err := sess.Close(context.Background()); err != nil {
		t.Fatalf("Close of a missing session should succeed, got %v", err)
	}
}

func TestNotFoundIsTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown session"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOptions())
	sess := &Session{c: c, ID: "gone"}
	_, err := sess.ApplyDelta(context.Background(), model.Delta{})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound for a vanished session, got %v", err)
	}
}

func TestContextCancelStopsRetrying(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	opt := fastOptions()
	opt.BaseDelay = time.Hour // the first backoff sleep never finishes
	opt.MaxDelay = time.Hour
	c := New(ts.URL, opt)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Solve(ctx, "greedy", testInstance(), SolveOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (cancel during backoff)", got)
	}
}

func TestBackoffShape(t *testing.T) {
	opt := Options{
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  300 * time.Millisecond,
		Rand:      rand.New(rand.NewSource(1)),
	}
	c := New("http://unused", opt)
	for i := 0; i < 8; i++ {
		window := opt.BaseDelay << uint(i)
		if window <= 0 || window > opt.MaxDelay {
			window = opt.MaxDelay
		}
		d := c.backoff(i, 0)
		if d < window/2 || d > window {
			t.Fatalf("backoff(%d) = %v outside equal-jitter window [%v, %v]", i, d, window/2, window)
		}
	}
	// Retry-After sets the floor.
	if d := c.backoff(0, 2*time.Second); d != 2*time.Second {
		t.Fatalf("backoff ignored Retry-After floor: %v", d)
	}
}
