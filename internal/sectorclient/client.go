// Package sectorclient is a retrying HTTP client for the sectord daemon.
//
// Retries follow the daemon's durability contract: only idempotent routes
// are retried. /solve is a pure function of its body and DELETE /session is
// naturally idempotent, so both retry freely on transient failures (network
// errors, 429/502/503/504). POST /session/{id}/delta is made retry-safe by
// attaching an automatically generated idempotency key — a retry that lands
// after a crash-recovered daemon already applied the delta is answered from
// current state instead of being applied twice. POST /session is the one
// route that is never retried: without a server-side creation key, a retry
// after an ambiguous failure could leak a duplicate session (and its
// journal); callers see the error and decide.
//
// Backoff between attempts is capped exponential with equal jitter, and a
// 429/503 Retry-After header, when present, sets the floor.
package sectorclient

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sectorpack/internal/model"
)

// Options tunes a Client. The zero value is usable: defaults are filled in
// by New.
type Options struct {
	// HTTPClient issues the requests; nil means a fresh http.Client with
	// Timeout as its overall per-attempt timeout.
	HTTPClient *http.Client
	// Timeout bounds each individual attempt (not the whole retry loop —
	// bound that with the context). Zero means 30s. Ignored when
	// HTTPClient is set.
	Timeout time.Duration
	// MaxRetries is how many times a retryable request is re-sent after
	// the first attempt. Zero means 4; negative disables retries.
	MaxRetries int
	// BaseDelay seeds the exponential backoff (delay before retry i is
	// roughly BaseDelay·2ⁱ, jittered). Zero means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 3s.
	MaxDelay time.Duration
	// Rand supplies backoff jitter; nil means a time-seeded source. Tests
	// inject a fixed seed for deterministic delays.
	Rand *rand.Rand
}

// Client talks to one sectord base URL. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	opt  Options

	mu  sync.Mutex // guards rnd
	rnd *rand.Rand

	idemPrefix string
	idemSeq    atomic.Int64
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8377").
func New(baseURL string, opt Options) *Client {
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	if opt.HTTPClient == nil {
		opt.HTTPClient = &http.Client{Timeout: opt.Timeout}
	}
	if opt.MaxRetries == 0 {
		opt.MaxRetries = 4
	}
	if opt.BaseDelay <= 0 {
		opt.BaseDelay = 100 * time.Millisecond
	}
	if opt.MaxDelay <= 0 {
		opt.MaxDelay = 3 * time.Second
	}
	rnd := opt.Rand
	if rnd == nil {
		rnd = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	var pfx [6]byte
	cryptorand.Read(pfx[:])
	return &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         opt.HTTPClient,
		opt:        opt,
		rnd:        rnd,
		idemPrefix: hex.EncodeToString(pfx[:]),
	}
}

// APIError is a non-2xx daemon reply that was not retried away.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("sectord: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// ErrNotFound wraps 404s (unknown session ID — e.g. one that did not
// survive a daemon restart) so callers can recreate instead of failing.
var ErrNotFound = errors.New("not found")

// SolveResult is the daemon's answer to /solve and both session routes.
type SolveResult struct {
	Solver      string    `json:"solver"`
	Algorithm   string    `json:"algorithm"`
	Profit      int64     `json:"profit"`
	UpperBound  float64   `json:"upper_bound"`
	Orientation []float64 `json:"orientation"`
	Owner       []int     `json:"owner"`
	ElapsedMS   float64   `json:"elapsed_ms"`

	Degraded       bool   `json:"degraded"`
	SolverUsed     string `json:"solver_used"`
	FallbackReason string `json:"fallback_reason"`

	// CacheStatus echoes the X-Sectord-Cache header (hit/miss/...), empty
	// when the daemon did not set it.
	CacheStatus string `json:"-"`
	// Attempts is how many HTTP attempts this answer took (1 = no retry).
	Attempts int `json:"-"`
}

// Assignment rebuilds the model form of the answer, ready for a local
// Assignment.Check against the instance the caller sent.
func (r *SolveResult) Assignment() *model.Assignment {
	return &model.Assignment{Orientation: r.Orientation, Owner: r.Owner}
}

// SolveOptions are the per-request solve knobs.
type SolveOptions struct {
	Seed          *int64
	TimeoutMillis int64
	// AllowDegraded opts into the daemon's hedged fallback (?degraded=allow):
	// a solve that times out or fails answers with the fallback solver's
	// result, marked Degraded, instead of an error.
	AllowDegraded bool
}

// Solve solves the instance remotely. Retries on transient failures.
func (c *Client) Solve(ctx context.Context, solver string, in *model.Instance, opt SolveOptions) (*SolveResult, error) {
	body, err := json.Marshal(map[string]any{
		"format_version": 1, "solver": solver, "seed": opt.Seed,
		"timeout_ms": opt.TimeoutMillis, "instance": in,
	})
	if err != nil {
		return nil, err
	}
	url := c.base + "/solve"
	if opt.AllowDegraded {
		url += "?degraded=allow"
	}
	return c.doSolve(ctx, http.MethodPost, url, body, true)
}

// Session is a handle on a daemon-side delta-solve session.
type Session struct {
	c  *Client
	ID string
}

// CreateSession opens a delta-solve session. This is the one non-idempotent
// route: it is never retried, so an ambiguous network failure surfaces as
// an error rather than a potential duplicate session.
func (c *Client) CreateSession(ctx context.Context, solver string, in *model.Instance, opt SolveOptions) (*Session, *SolveResult, error) {
	body, err := json.Marshal(map[string]any{
		"format_version": 1, "solver": solver, "seed": opt.Seed,
		"timeout_ms": opt.TimeoutMillis, "instance": in,
	})
	if err != nil {
		return nil, nil, err
	}
	res, raw, err := c.do(ctx, http.MethodPost, c.base+"/session", body, false)
	if err != nil {
		return nil, nil, err
	}
	var rep struct {
		SessionID string `json:"session_id"`
		SolveResult
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, nil, fmt.Errorf("sectord: bad session response: %w", err)
	}
	rep.SolveResult.Attempts = res.attempts
	return &Session{c: c, ID: rep.SessionID}, &rep.SolveResult, nil
}

// ApplyDelta applies one delta to the session. Every call stamps a fresh
// idempotency key; retries of the same call reuse that key, so a delta is
// applied at most once even when a retry crosses a daemon restart.
func (s *Session) ApplyDelta(ctx context.Context, d model.Delta) (*SolveResult, error) {
	key := fmt.Sprintf("%s-%d", s.c.idemPrefix, s.c.idemSeq.Add(1))
	body, err := json.Marshal(map[string]any{
		"format_version": 1, "idempotency_key": key, "delta": d,
	})
	if err != nil {
		return nil, err
	}
	return s.c.doSolve(ctx, http.MethodPost, s.c.base+"/session/"+s.ID+"/delta", body, true)
}

// Close deletes the session on the daemon. Idempotent: a 404 (the retry of
// a delete that already landed, or a session the daemon dropped) is
// success.
func (s *Session) Close(ctx context.Context) error {
	_, _, err := s.c.do(ctx, http.MethodDelete, s.c.base+"/session/"+s.ID, nil, true)
	if errors.Is(err, ErrNotFound) {
		return nil
	}
	return err
}

// RawResponse is the terminal outcome of Do: the daemon's status, headers,
// and body, plus how many HTTP attempts it took. Unlike the typed methods,
// non-2xx statuses land here instead of becoming errors.
type RawResponse struct {
	Status   int
	Header   http.Header
	Body     []byte
	Attempts int
}

// Do is the routing hook for proxies: it issues one logical request with
// the client's retry policy and returns the daemon's response verbatim —
// including non-2xx statuses — so shed (429), degraded, and error
// semantics can be passed through unchanged. When retryable, transient
// statuses (429/502/503/504) are retried with backoff and the Retry-After
// floor; once the budget is exhausted the LAST such response is returned,
// not an error, so the caller can forward the daemon's honest Retry-After
// hint. Only network-level failures (no HTTP response at all) return an
// error; the caller decides whether to fail over to another backend.
func (c *Client) Do(ctx context.Context, method, path string, body []byte, retryable bool) (*RawResponse, error) {
	var lastErr error
	var last *RawResponse
	maxAttempts := 1
	if retryable && c.opt.MaxRetries > 0 {
		maxAttempts = 1 + c.opt.MaxRetries
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			floor := retryAfter(lastErr)
			if last != nil {
				floor = parseRetryAfter(last.Header.Get("Retry-After"))
			}
			select {
			case <-time.After(c.backoff(attempt-1, floor)):
			case <-ctx.Done():
				if last != nil {
					return last, nil
				}
				return nil, fmt.Errorf("%w (last attempt: %w)", ctx.Err(), lastErr)
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			lastErr, last = err, nil
			continue
		}
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil {
			lastErr, last = rerr, nil
			continue
		}
		out := &RawResponse{Status: resp.StatusCode, Header: resp.Header, Body: raw, Attempts: attempt + 1}
		if !transientStatus(resp.StatusCode) {
			return out, nil
		}
		last = out
	}
	if last != nil {
		return last, nil
	}
	return nil, fmt.Errorf("sectord: giving up after %d attempts: %w", maxAttempts, lastErr)
}

// doSolve runs do and decodes the solve-shaped answer.
func (c *Client) doSolve(ctx context.Context, method, url string, body []byte, retryable bool) (*SolveResult, error) {
	res, raw, err := c.do(ctx, method, url, body, retryable)
	if err != nil {
		return nil, err
	}
	var rep SolveResult
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("sectord: bad solve response: %w", err)
	}
	rep.CacheStatus = res.cacheStatus
	rep.Attempts = res.attempts
	return &rep, nil
}

// doResult carries response metadata alongside the decoded body.
type doResult struct {
	attempts    int
	cacheStatus string
}

// do issues one logical request, retrying transient failures when the
// route is retryable. The returned bytes are the 2xx body.
func (c *Client) do(ctx context.Context, method, url string, body []byte, retryable bool) (doResult, []byte, error) {
	res := doResult{}
	var lastErr error
	maxAttempts := 1
	if retryable && c.opt.MaxRetries > 0 {
		maxAttempts = 1 + c.opt.MaxRetries
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt-1, retryAfter(lastErr))
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return res, nil, fmt.Errorf("%w (last attempt: %w)", ctx.Err(), lastErr)
			}
		}
		res.attempts = attempt + 1
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return res, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return res, nil, err
			}
			lastErr = err // network-level: retryable
			continue
		}
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		if resp.StatusCode/100 == 2 {
			res.cacheStatus = resp.Header.Get("X-Sectord-Cache")
			return res, raw, nil
		}
		apiErr := &retryableError{
			APIError:   APIError{Status: resp.StatusCode, Message: errorMessage(raw)},
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		if !transientStatus(resp.StatusCode) {
			if resp.StatusCode == http.StatusNotFound {
				return res, nil, fmt.Errorf("%w: %w", ErrNotFound, &apiErr.APIError)
			}
			return res, nil, &apiErr.APIError
		}
		lastErr = apiErr
	}
	return res, nil, fmt.Errorf("sectord: giving up after %d attempts: %w", res.attempts, unwrapRetryable(lastErr))
}

// transientStatus reports whether a status is worth retrying: shed load,
// gateway hiccups, and the daemon's own "try again" answers.
func transientStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryableError carries the server's Retry-After hint through the loop.
type retryableError struct {
	APIError
	retryAfter time.Duration
}

func retryAfter(err error) time.Duration {
	var re *retryableError
	if errors.As(err, &re) {
		return re.retryAfter
	}
	return 0
}

func unwrapRetryable(err error) error {
	var re *retryableError
	if errors.As(err, &re) {
		return &re.APIError
	}
	return err
}

// parseRetryAfter accepts both RFC 9110 forms of the header: delta-seconds
// ("3") and an HTTP-date ("Mon, 02 Jan 2006 15:04:05 GMT"), the latter
// relative to the local clock. Unparseable or past values mean no floor.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

func errorMessage(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	msg := strings.TrimSpace(string(raw))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return msg
}

// backoff computes the sleep before retry i (0-based): capped exponential
// with equal jitter — half the window is deterministic, half uniform — and
// never below the server's Retry-After hint.
func (c *Client) backoff(i int, floor time.Duration) time.Duration {
	d := c.opt.BaseDelay << uint(i)
	if d <= 0 || d > c.opt.MaxDelay {
		d = c.opt.MaxDelay
	}
	c.mu.Lock()
	jitter := time.Duration(c.rnd.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	d = d/2 + jitter
	if d < floor {
		d = floor
	}
	return d
}
