package geom

import (
	"fmt"
	"math"
)

// Sector is a directional-antenna footprint: the set of points whose
// angular coordinate lies on the clockwise arc [Alpha, Alpha+Rho] and whose
// radius is at most Range. Range = +Inf expresses a pure angular sector
// (the ANGLES variant).
type Sector struct {
	Alpha float64 // orientation: start angle of the arc, normalized to [0, 2π)
	Rho   float64 // angular width in [0, 2π]
	Range float64 // radial reach; math.Inf(1) for unbounded
	// Inner is the near-field exclusion radius: points closer than Inner
	// are outside the footprint (an annulus sector). Zero (the default)
	// recovers the plain sector of the paper.
	Inner float64
}

// NewSector builds a normalized sector. Negative widths collapse to zero,
// widths above 2π saturate; a negative range collapses to zero (an empty
// footprint apart from the origin).
func NewSector(alpha, rho, rng float64) Sector {
	iv := NewInterval(alpha, rho)
	if rng < 0 {
		rng = 0
	}
	return Sector{Alpha: iv.Start, Rho: iv.Width, Range: rng}
}

// UnboundedSector is a sector with infinite radial reach.
func UnboundedSector(alpha, rho float64) Sector {
	return NewSector(alpha, rho, math.Inf(1))
}

// Interval returns the sector's angular footprint.
func (s Sector) Interval() Interval { return Interval{Start: s.Alpha, Width: s.Rho} }

// NewAnnulusSector builds a sector with a near-field exclusion radius.
// Inner is clamped to [0, Range].
func NewAnnulusSector(alpha, rho, inner, rng float64) Sector {
	s := NewSector(alpha, rho, rng)
	if inner < 0 {
		inner = 0
	}
	if inner > s.Range {
		inner = s.Range
	}
	s.Inner = inner
	return s
}

// Contains reports whether the polar point lies inside the sector. The
// radial tests use a relative tolerance so points generated exactly at a
// boundary radius count as covered.
func (s Sector) Contains(p Polar) bool {
	if !math.IsInf(s.Range, 1) {
		if p.R > s.Range*(1+1e-12)+Eps {
			return false
		}
	}
	if s.Inner > 0 && p.R < s.Inner*(1-1e-12)-Eps {
		return false
	}
	return AngleBetween(p.Theta, s.Alpha, s.Rho)
}

// Reoriented returns a copy of the sector rotated so its leading boundary
// sits at alpha.
func (s Sector) Reoriented(alpha float64) Sector {
	s.Alpha = NormAngle(alpha)
	return s
}

// Area returns the area of the sector footprint (annular when Inner > 0);
// infinite for unbounded sectors of positive width.
func (s Sector) Area() float64 {
	if math.IsInf(s.Range, 1) {
		if s.Rho == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 0.5 * s.Rho * (s.Range*s.Range - s.Inner*s.Inner)
}

func (s Sector) String() string {
	if math.IsInf(s.Range, 1) {
		return fmt.Sprintf("sector(α=%.2f°, ρ=%.2f°, R=∞)", Degrees(s.Alpha), Degrees(s.Rho))
	}
	return fmt.Sprintf("sector(α=%.2f°, ρ=%.2f°, R=%.2f)", Degrees(s.Alpha), Degrees(s.Rho), s.Range)
}
