package geom

import (
	"math"
	"testing"
)

func TestAnnulusSectorContains(t *testing.T) {
	s := NewAnnulusSector(0, 1, 2, 8)
	cases := []struct {
		p    Polar
		want bool
	}{
		{NewPolar(0.5, 5), true},
		{NewPolar(0.5, 2), true},  // inner boundary counts
		{NewPolar(0.5, 8), true},  // outer boundary counts
		{NewPolar(0.5, 1), false}, // inside the dead zone
		{NewPolar(0.5, 9), false}, // beyond reach
		{NewPolar(2.0, 5), false}, // wrong angle
	}
	for _, c := range cases {
		if got := s.Contains(c.p); got != c.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", s, c.p, got, c.want)
		}
	}
}

func TestAnnulusSectorClamping(t *testing.T) {
	s := NewAnnulusSector(0, 1, -3, 8)
	if s.Inner != 0 {
		t.Errorf("negative inner should clamp to 0, got %v", s.Inner)
	}
	s = NewAnnulusSector(0, 1, 10, 8)
	if s.Inner != 8 {
		t.Errorf("inner above range should clamp to range, got %v", s.Inner)
	}
}

func TestAnnulusArea(t *testing.T) {
	s := NewAnnulusSector(0, math.Pi, 1, 3)
	want := 0.5 * math.Pi * (9 - 1)
	if math.Abs(s.Area()-want) > 1e-12 {
		t.Errorf("Area = %v, want %v", s.Area(), want)
	}
	// plain sector unchanged
	plain := NewSector(0, math.Pi, 3)
	if math.Abs(plain.Area()-0.5*math.Pi*9) > 1e-12 {
		t.Errorf("plain Area = %v", plain.Area())
	}
}

func TestUnboundedAnnulus(t *testing.T) {
	s := Sector{Alpha: 0, Rho: 1, Range: math.Inf(1), Inner: 3}
	if s.Contains(NewPolar(0.5, 2)) {
		t.Error("dead zone applies even with unbounded outer range")
	}
	if !s.Contains(NewPolar(0.5, 1e9)) {
		t.Error("unbounded outer range should admit distant points")
	}
}
