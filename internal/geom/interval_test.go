package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIntervalClamps(t *testing.T) {
	iv := NewInterval(-1, -2)
	if iv.Width != 0 {
		t.Errorf("negative width should clamp to 0, got %v", iv.Width)
	}
	if iv.Start < 0 || iv.Start >= TwoPi {
		t.Errorf("start not normalized: %v", iv.Start)
	}
	iv = NewInterval(0, 100)
	if iv.Width != TwoPi {
		t.Errorf("oversized width should clamp to 2π, got %v", iv.Width)
	}
}

func TestIntervalContains(t *testing.T) {
	iv := NewInterval(5.5, 2.0) // wraps through 0
	for _, theta := range []float64{5.5, 6.0, 0.2, NormAngle(5.5 + 2.0)} {
		if !iv.Contains(theta) {
			t.Errorf("%v should contain θ=%v", iv, theta)
		}
	}
	for _, theta := range []float64{2.0, 5.0, 4.0} {
		if iv.Contains(theta) {
			t.Errorf("%v should not contain θ=%v", iv, theta)
		}
	}
}

func TestIntervalEnd(t *testing.T) {
	iv := NewInterval(6.0, 1.0)
	if !almostEqual(iv.End(), NormAngle(7.0), 1e-12) {
		t.Errorf("End = %v, want %v", iv.End(), NormAngle(7.0))
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := NewInterval(0, 1)
	b := NewInterval(0.5, 1)
	c := NewInterval(2, 1)
	d := NewInterval(6, 0.5) // wraps into a
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a and c are disjoint")
	}
	if !a.Overlaps(d) || !d.Overlaps(a) {
		t.Error("a and d overlap across the wrap")
	}
	if !FullCircle().Overlaps(c) {
		t.Error("full circle overlaps everything")
	}
}

func TestDegenerateIntervalOverlap(t *testing.T) {
	pt := NewInterval(1.0, 0)
	host := NewInterval(0.5, 1.0)
	if !pt.Overlaps(host) || !host.Overlaps(pt) {
		t.Error("point interval inside a host interval should overlap it")
	}
	far := NewInterval(3.0, 0.2)
	if pt.Overlaps(far) || far.Overlaps(pt) {
		t.Error("point interval outside should not overlap")
	}
	pt2 := NewInterval(1.0, 0)
	if !pt.Overlaps(pt2) {
		t.Error("identical point intervals overlap")
	}
	pt3 := NewInterval(1.1, 0)
	if pt.Overlaps(pt3) {
		t.Error("distinct point intervals do not overlap")
	}
}

func TestContainsInterval(t *testing.T) {
	outer := NewInterval(1, 2)
	inner := NewInterval(1.5, 1)
	if !outer.ContainsInterval(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsInterval(outer) {
		t.Error("inner cannot contain a wider outer")
	}
	if !outer.ContainsInterval(outer) {
		t.Error("interval contains itself")
	}
	if !FullCircle().ContainsInterval(outer) {
		t.Error("full circle contains everything")
	}
	wrap := NewInterval(6, 1.5)
	sub := NewInterval(0.1, 0.5)
	if !wrap.ContainsInterval(sub) {
		t.Error("wrap-around interval should contain its tail segment")
	}
	outside := NewInterval(3, 0.5)
	if wrap.ContainsInterval(outside) {
		t.Error("wrap-around interval should not contain a far segment")
	}
}

func TestContainsIntervalStartAtOwnStart(t *testing.T) {
	outer := NewInterval(2, 1)
	sub := NewInterval(2, 0.5)
	if !outer.ContainsInterval(sub) {
		t.Error("sub starting at outer.Start should be contained")
	}
	over := NewInterval(2.8, 0.5) // sticks out past the end
	if outer.ContainsInterval(over) {
		t.Error("interval protruding past the end must not be contained")
	}
}

func TestClockwiseGapTo(t *testing.T) {
	a := NewInterval(0, 1)
	b := NewInterval(2, 1)
	if g := a.ClockwiseGapTo(b); !almostEqual(g, 1, 1e-12) {
		t.Errorf("gap = %v, want 1", g)
	}
	if g := b.ClockwiseGapTo(a); !almostEqual(g, TwoPi-3, 1e-12) {
		t.Errorf("reverse gap = %v, want %v", g, TwoPi-3)
	}
}

func TestInteriorsOverlap(t *testing.T) {
	a := NewInterval(0, 1)
	flush := NewInterval(1, 1)
	if a.InteriorsOverlap(flush) || flush.InteriorsOverlap(a) {
		t.Error("flush intervals have disjoint interiors")
	}
	overlapping := NewInterval(0.5, 1)
	if !a.InteriorsOverlap(overlapping) {
		t.Error("shifted interval overlaps interior")
	}
	point := NewInterval(0.5, 0)
	if a.InteriorsOverlap(point) || point.InteriorsOverlap(a) {
		t.Error("zero-width interval has empty interior")
	}
	full := FullCircle()
	if !full.InteriorsOverlap(a) || !a.InteriorsOverlap(full) {
		t.Error("full circle interior overlaps any positive-width interval")
	}
	embedded := NewInterval(0.2, 0.3)
	if !a.InteriorsOverlap(embedded) {
		t.Error("embedded interval overlaps interior")
	}
	wrapA := NewInterval(6, 1) // wraps through 0
	if !wrapA.InteriorsOverlap(NewInterval(0.2, 1)) {
		t.Error("wrap-around interval overlaps a tail neighbor")
	}
	if wrapA.InteriorsOverlap(NewInterval(NormAngle(7), 1)) {
		t.Error("flush after wrap-around interval should not overlap")
	}
}

func TestDisjointAllowsFlushPartition(t *testing.T) {
	// Three sectors tiling the circle flush: interiors disjoint.
	w := TwoPi / 3
	ivs := []Interval{NewInterval(0, w), NewInterval(w, w), NewInterval(2*w, w)}
	if !Disjoint(ivs) {
		t.Error("flush partition of the circle should count as disjoint")
	}
}

func TestDisjointFamily(t *testing.T) {
	ivs := []Interval{NewInterval(0, 1), NewInterval(1.5, 1), NewInterval(3, 0.5)}
	if !Disjoint(ivs) {
		t.Error("family should be disjoint")
	}
	ivs = append(ivs, NewInterval(0.5, 0.2))
	if Disjoint(ivs) {
		t.Error("family with an embedded interval is not disjoint")
	}
}

func TestTotalWidth(t *testing.T) {
	ivs := []Interval{NewInterval(0, 1), NewInterval(2, 0.5)}
	if w := TotalWidth(ivs); !almostEqual(w, 1.5, 1e-12) {
		t.Errorf("TotalWidth = %v, want 1.5", w)
	}
}

// Property: containment is rotation-invariant — rotating both the interval
// and the probe angle by the same offset never changes the answer.
func TestContainsRotationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		start := rng.Float64() * TwoPi
		width := rng.Float64() * TwoPi
		theta := rng.Float64() * TwoPi
		shift := rng.Float64()*100 - 50
		iv := NewInterval(start, width)
		shifted := NewInterval(start+shift, width)
		// Avoid probing within the tolerance band of a boundary, where a
		// shifted representation may legitimately differ by one Eps.
		dFromStart := AngleDist(start, theta)
		if math.Abs(dFromStart-width) < 1e-6 || dFromStart < 1e-6 || TwoPi-dFromStart < 1e-6 {
			continue
		}
		if iv.Contains(theta) != shifted.Contains(NormAngle(theta+shift)) {
			t.Fatalf("rotation changed containment: iv=%v θ=%v shift=%v", iv, theta, shift)
		}
	}
}

// Property: an interval always contains its start, its midpoint and its end.
func TestContainsBoundaryProperty(t *testing.T) {
	f := func(start, width float64) bool {
		if math.IsNaN(start) || math.IsInf(start, 0) || math.IsNaN(width) || math.IsInf(width, 0) {
			return true
		}
		iv := NewInterval(start, math.Abs(math.Mod(width, TwoPi)))
		return iv.Contains(iv.Start) &&
			iv.Contains(NormAngle(iv.Start+iv.Width/2)) &&
			iv.Contains(iv.End())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Disjoint families never exceed a total width of 2π.
func TestDisjointWidthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(5)
		ivs := make([]Interval, n)
		for i := range ivs {
			ivs[i] = NewInterval(rng.Float64()*TwoPi, rng.Float64())
		}
		if Disjoint(ivs) && TotalWidth(ivs) > TwoPi+1e-6 {
			t.Fatalf("disjoint family with total width %v > 2π: %v", TotalWidth(ivs), ivs)
		}
	}
}
