package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolarXYRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := NewPolar(rng.Float64()*TwoPi, rng.Float64()*100)
		q := FromXY(p.ToXY())
		if !almostEqual(q.R, p.R, 1e-9*(1+p.R)) {
			t.Fatalf("radius round trip: %v -> %v", p, q)
		}
		if p.R > 1e-9 {
			d := math.Min(AngleDist(p.Theta, q.Theta), AngleDist(q.Theta, p.Theta))
			if d > 1e-9 {
				t.Fatalf("angle round trip: %v -> %v (d=%v)", p, q, d)
			}
		}
	}
}

func TestNewPolarNegativeRadius(t *testing.T) {
	p := NewPolar(0, -2)
	if p.R != 2 {
		t.Errorf("radius = %v, want 2", p.R)
	}
	if !almostEqual(p.Theta, math.Pi, 1e-12) {
		t.Errorf("theta = %v, want π", p.Theta)
	}
}

func TestFromXYOrigin(t *testing.T) {
	p := FromXY(XY{0, 0})
	if p.R != 0 || p.Theta != 0 {
		t.Errorf("origin should map to zero polar, got %v", p)
	}
}

func TestDistMatchesCartesian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := NewPolar(rng.Float64()*TwoPi, rng.Float64()*50)
		b := NewPolar(rng.Float64()*TwoPi, rng.Float64()*50)
		pa, pb := a.ToXY(), b.ToXY()
		want := math.Hypot(pa.X-pb.X, pa.Y-pb.Y)
		got := Dist(a, b)
		if !almostEqual(got, want, 1e-7*(1+want)) {
			t.Fatalf("Dist(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestDistSymmetricAndZero(t *testing.T) {
	a := NewPolar(1, 3)
	b := NewPolar(2, 4)
	if !almostEqual(Dist(a, b), Dist(b, a), 1e-12) {
		t.Error("Dist should be symmetric")
	}
	if Dist(a, a) != 0 {
		t.Error("Dist(a,a) should be exactly 0")
	}
}
