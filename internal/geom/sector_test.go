package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSectorContains(t *testing.T) {
	s := NewSector(0, math.Pi/2, 10)
	cases := []struct {
		p    Polar
		want bool
	}{
		{NewPolar(math.Pi/4, 5), true},
		{NewPolar(math.Pi/4, 10), true}, // boundary radius
		{NewPolar(math.Pi/4, 10.1), false},
		{NewPolar(math.Pi, 5), false},  // wrong angle
		{NewPolar(0, 0), true},         // origin angle boundary
		{NewPolar(math.Pi/2, 3), true}, // angular end boundary
	}
	for _, c := range cases {
		if got := s.Contains(c.p); got != c.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", s, c.p, got, c.want)
		}
	}
}

func TestUnboundedSector(t *testing.T) {
	s := UnboundedSector(1, 1)
	if !s.Contains(NewPolar(1.5, 1e12)) {
		t.Error("unbounded sector should contain arbitrarily distant points in its arc")
	}
	if s.Contains(NewPolar(4, 1)) {
		t.Error("unbounded sector still restricts angle")
	}
}

func TestSectorReoriented(t *testing.T) {
	s := NewSector(0, 1, 5)
	r := s.Reoriented(3)
	if r.Alpha != 3 || r.Rho != 1 || r.Range != 5 {
		t.Errorf("Reoriented = %+v", r)
	}
	if s.Alpha != 0 {
		t.Error("Reoriented must not mutate the receiver")
	}
}

func TestSectorArea(t *testing.T) {
	s := NewSector(0, math.Pi, 2)
	want := 0.5 * math.Pi * 4
	if !almostEqual(s.Area(), want, 1e-12) {
		t.Errorf("Area = %v, want %v", s.Area(), want)
	}
	if !math.IsInf(UnboundedSector(0, 1).Area(), 1) {
		t.Error("unbounded sector with positive width has infinite area")
	}
	if UnboundedSector(0, 0).Area() != 0 {
		t.Error("zero-width sector has zero area")
	}
}

func TestNewSectorClamps(t *testing.T) {
	s := NewSector(-1, -1, -1)
	if s.Rho != 0 || s.Range != 0 {
		t.Errorf("clamping failed: %+v", s)
	}
	if s.Alpha < 0 || s.Alpha >= TwoPi {
		t.Errorf("alpha not normalized: %v", s.Alpha)
	}
}

// Property: rotating the sector and the point together preserves containment
// away from boundary-tolerance bands.
func TestSectorRotationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		s := NewSector(rng.Float64()*TwoPi, rng.Float64()*TwoPi, 1+rng.Float64()*10)
		p := NewPolar(rng.Float64()*TwoPi, rng.Float64()*12)
		d := AngleDist(s.Alpha, p.Theta)
		if math.Abs(d-s.Rho) < 1e-6 || d < 1e-6 || TwoPi-d < 1e-6 || math.Abs(p.R-s.Range) < 1e-6 {
			continue
		}
		shift := rng.Float64() * TwoPi
		s2 := s.Reoriented(s.Alpha + shift)
		p2 := NewPolar(p.Theta+shift, p.R)
		if s.Contains(p) != s2.Contains(p2) {
			t.Fatalf("rotation changed containment: %v %v shift=%v", s, p, shift)
		}
	}
}

func TestSectorString(t *testing.T) {
	if s := UnboundedSector(0, 1).String(); s == "" {
		t.Error("String should be non-empty")
	}
	if s := NewSector(0, 1, 2).String(); s == "" {
		t.Error("String should be non-empty")
	}
}
