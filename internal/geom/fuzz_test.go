package geom

import (
	"math"
	"testing"
)

func FuzzNormAngle(f *testing.F) {
	for _, seed := range []float64{0, -1, 1, math.Pi, TwoPi, -TwoPi, 1e18, -1e18, 1e-300} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, theta float64) {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			t.Skip()
		}
		got := NormAngle(theta)
		if math.IsNaN(got) {
			t.Fatalf("NormAngle(%v) = NaN", theta)
		}
		if got < 0 || got >= TwoPi {
			t.Fatalf("NormAngle(%v) = %v outside [0, 2π)", theta, got)
		}
		if NormAngle(got) != got {
			t.Fatalf("NormAngle not idempotent at %v", theta)
		}
	})
}

func FuzzAngleBetween(f *testing.F) {
	f.Add(0.5, 0.0, 1.0)
	f.Add(0.1, 6.0, 1.0)
	f.Add(3.0, 0.0, TwoPi)
	f.Fuzz(func(t *testing.T, theta, start, width float64) {
		for _, v := range []float64{theta, start, width} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				t.Skip()
			}
		}
		if width < 0 {
			width = -width
		}
		if width > TwoPi {
			width = TwoPi
		}
		got := AngleBetween(theta, start, width)
		// Rotation invariance away from tolerance bands.
		d := AngleDist(start, theta)
		if math.Abs(d-width) < 1e-6 || d < 1e-6 || TwoPi-d < 1e-6 {
			t.Skip()
		}
		const shift = 1.2345
		if AngleBetween(theta+shift, start+shift, width) != got {
			t.Fatalf("rotation changed containment: θ=%v start=%v width=%v", theta, start, width)
		}
	})
}

func FuzzIntervalOverlapSymmetry(f *testing.F) {
	f.Add(0.0, 1.0, 0.5, 1.0)
	f.Add(6.0, 1.0, 0.2, 1.0)
	f.Fuzz(func(t *testing.T, s1, w1, s2, w2 float64) {
		for _, v := range []float64{s1, w1, s2, w2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				t.Skip()
			}
		}
		a := NewInterval(s1, math.Abs(math.Mod(w1, TwoPi)))
		b := NewInterval(s2, math.Abs(math.Mod(w2, TwoPi)))
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("Overlaps asymmetric: %v vs %v", a, b)
		}
		if a.InteriorsOverlap(b) != b.InteriorsOverlap(a) {
			t.Fatalf("InteriorsOverlap asymmetric: %v vs %v", a, b)
		}
		// Interiors overlapping implies closed overlap.
		if a.InteriorsOverlap(b) && !a.Overlaps(b) {
			t.Fatalf("interior overlap without closed overlap: %v vs %v", a, b)
		}
	})
}
