package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormAngleCanonicalRange(t *testing.T) {
	cases := []struct {
		in   float64
		want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{TwoPi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * TwoPi, 0},
		{-7 * TwoPi, 0},
		{TwoPi + 0.25, 0.25},
		{-0.25, TwoPi - 0.25},
	}
	for _, c := range cases {
		got := NormAngle(c.in)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormAngleRangeProperty(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		got := NormAngle(theta)
		return got >= 0 && got < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormAngleIdempotent(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		once := NormAngle(theta)
		return NormAngle(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDist(t *testing.T) {
	cases := []struct {
		from, to, want float64
	}{
		{0, math.Pi / 2, math.Pi / 2},
		{math.Pi / 2, 0, 3 * math.Pi / 2},
		{3, 3, 0},
		{6, 0.5, TwoPi - 6 + 0.5},
	}
	for _, c := range cases {
		got := AngleDist(c.from, c.to)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("AngleDist(%v,%v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestAngleDistRoundTrip(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a, b = NormAngle(a), NormAngle(b)
		d := AngleDist(a, b)
		return almostEqual(NormAngle(a+d), b, 1e-9) || almostEqual(math.Abs(NormAngle(a+d)-b), TwoPi, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleBetween(t *testing.T) {
	if !AngleBetween(0.5, 0, 1) {
		t.Error("0.5 should lie in [0,1]")
	}
	if AngleBetween(1.5, 0, 1) {
		t.Error("1.5 should not lie in [0,1]")
	}
	// wrap-around arc
	if !AngleBetween(0.1, 6.0, 1.0) {
		t.Error("0.1 should lie in the wrap-around arc starting at 6.0")
	}
	if AngleBetween(3.0, 6.0, 1.0) {
		t.Error("3.0 should not lie in the wrap-around arc starting at 6.0")
	}
	// boundary tolerance
	if !AngleBetween(1.0, 0, 1.0) {
		t.Error("end boundary should count as inside")
	}
	if !AngleBetween(0, 0, 1.0) {
		t.Error("start boundary should count as inside")
	}
	// full circle covers everything
	if !AngleBetween(2.3, 4.5, TwoPi) {
		t.Error("full-width arc must contain every angle")
	}
}

func TestAngleBetweenStartBoundaryFromBelow(t *testing.T) {
	// An angle an ulp before the start should still count via the 2π-d
	// fallback branch.
	start := 1.0
	theta := math.Nextafter(start, 0)
	if !AngleBetween(theta, start, 0.5) {
		t.Error("angle one ulp before start should be inside (tolerance)")
	}
}

func TestMinAngularGap(t *testing.T) {
	if g := MinAngularGap(nil); g != TwoPi {
		t.Errorf("empty gap = %v, want 2π", g)
	}
	if g := MinAngularGap([]float64{1}); g != TwoPi {
		t.Errorf("single gap = %v, want 2π", g)
	}
	got := MinAngularGap([]float64{0, 1, 2.5, 6})
	if !almostEqual(got, TwoPi-6, 1e-12) {
		t.Errorf("gap = %v, want %v (wrap-around gap)", got, TwoPi-6)
	}
	got = MinAngularGap([]float64{0.2, 0.1, 3})
	if !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("gap = %v, want 0.1", got)
	}
}

func TestDegreesRadiansRoundTrip(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.Abs(deg) > 1e12 {
			return true
		}
		return almostEqual(Degrees(Radians(deg)), deg, math.Abs(deg)*1e-12+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
