package geom

import (
	"fmt"
	"math"
)

// Polar is a point in polar coordinates around the base station at the
// origin: Theta is the angular coordinate in [0, 2π), R the distance.
type Polar struct {
	Theta float64
	R     float64
}

// NewPolar normalizes the angle and rejects negative radii by reflecting
// them through the origin (r < 0 means the point at angle θ+π, radius |r|),
// matching the usual polar-coordinate convention.
func NewPolar(theta, r float64) Polar {
	if r < 0 {
		r = -r
		theta += math.Pi
	}
	return Polar{Theta: NormAngle(theta), R: r}
}

// XY is a point in Cartesian coordinates.
type XY struct {
	X float64
	Y float64
}

// ToXY converts polar to Cartesian coordinates.
func (p Polar) ToXY() XY {
	return XY{X: p.R * math.Cos(p.Theta), Y: p.R * math.Sin(p.Theta)}
}

// FromXY converts Cartesian to polar coordinates. The origin maps to
// Polar{0, 0}.
func FromXY(pt XY) Polar {
	r := math.Hypot(pt.X, pt.Y)
	if r == 0 {
		return Polar{}
	}
	return Polar{Theta: NormAngle(math.Atan2(pt.Y, pt.X)), R: r}
}

// Dist returns the Euclidean distance between two polar points, computed
// via the law of cosines to avoid an intermediate Cartesian conversion.
func Dist(a, b Polar) float64 {
	d2 := a.R*a.R + b.R*b.R - 2*a.R*b.R*math.Cos(a.Theta-b.Theta)
	if d2 < 0 { // rounding can push the tiny-distance case below zero
		return 0
	}
	return math.Sqrt(d2)
}

func (p Polar) String() string {
	return fmt.Sprintf("(θ=%.3f, r=%.3f)", p.Theta, p.R)
}
