// Package geom provides the planar and circular geometry primitives that
// underpin sector packing: normalized angles, circular (wrap-around)
// intervals, polar points, and antenna sectors.
//
// All angles are expressed in radians and normalized to the half-open range
// [0, 2π). Because sector boundaries are typically aligned exactly with
// customer angles (the candidate-orientation lemma), containment tests use a
// small absolute tolerance Eps so that boundary customers count as covered
// regardless of floating-point rounding.
package geom

import "math"

// TwoPi is the full circle in radians.
const TwoPi = 2 * math.Pi

// Eps is the absolute tolerance used by angular containment tests. It is
// large enough to absorb the rounding of a handful of float64 operations on
// angles, and far smaller than any meaningful angular separation between
// distinct customers in generated workloads.
const Eps = 1e-9

// NormAngle maps an arbitrary angle in radians to the canonical range
// [0, 2π). NaN is returned unchanged; ±Inf normalize to NaN, matching
// math.Mod semantics.
func NormAngle(theta float64) float64 {
	t := math.Mod(theta, TwoPi)
	if t < 0 {
		t += TwoPi
	}
	// math.Mod can return exactly TwoPi-ulp inputs as TwoPi after the
	// correction above when theta is a tiny negative number; fold it back.
	if t >= TwoPi {
		t -= TwoPi
	}
	return t
}

// AngleDist returns the clockwise distance from angle a to angle b, i.e. the
// unique value d in [0, 2π) with NormAngle(a+d) == NormAngle(b) up to
// floating-point rounding. It is the primitive on which circular interval
// containment is built.
func AngleDist(from, to float64) float64 {
	return NormAngle(to - from)
}

// WrapGap returns the angular gap stepping clockwise from angle `from`
// across the 2π seam to angle `to`, computed as exactly (2π − from) + to
// with no normalization. For normalized inputs it agrees with
// AngleDist(from, to) up to floating-point rounding, but callers that
// compare the gap against Eps use this form so the seam test is the same
// spelling everywhere (sweep candidate dedup, constrained-greedy end
// dedup) rather than per-site hand-rolled arithmetic.
func WrapGap(from, to float64) float64 {
	return TwoPi - from + to
}

// AnglesClose reports whether two normalized angles coincide within Eps,
// treating the 2π seam correctly: an angle just below 2π is close to one
// just above 0. It is the canonical "same candidate orientation" test.
func AnglesClose(a, b float64) bool {
	d := AngleDist(a, b)
	return d <= Eps || TwoPi-d <= Eps
}

// AngleBetween reports whether the angle theta lies on the clockwise arc
// from start spanning width radians, with Eps tolerance on both ends.
// Width must be in [0, 2π]; a width of 2π (or more) covers every angle.
func AngleBetween(theta, start, width float64) bool {
	if width >= TwoPi-Eps {
		return true
	}
	d := AngleDist(start, theta)
	if d <= width+Eps {
		return true
	}
	// theta may sit just *before* start due to rounding (d ≈ 2π).
	return TwoPi-d <= Eps
}

// MinAngularGap returns the smallest pairwise clockwise gap between any two
// distinct angles in the slice, or 2π if fewer than two angles are given.
// Generators use it to certify that instances keep customers separated by
// much more than Eps.
func MinAngularGap(angles []float64) float64 {
	if len(angles) < 2 {
		return TwoPi
	}
	sorted := make([]float64, len(angles))
	for i, a := range angles {
		sorted[i] = NormAngle(a)
	}
	insertionSort(sorted)
	best := TwoPi - sorted[len(sorted)-1] + sorted[0]
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g < best {
			best = g
		}
	}
	return best
}

// insertionSort keeps geom free of a sort dependency for the tiny slices it
// handles; callers with large inputs sort themselves.
func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Degrees converts radians to degrees; handy for human-readable output.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
