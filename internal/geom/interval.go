package geom

import "fmt"

// Interval is a circular (wrap-around) angular interval: the clockwise arc
// that starts at Start and spans Width radians. Start is kept normalized to
// [0, 2π); Width lies in [0, 2π]. The zero value is the degenerate single
// angle {0}.
type Interval struct {
	Start float64
	Width float64
}

// NewInterval builds a normalized interval. Widths outside [0, 2π] are
// clamped: negative widths collapse to 0 and widths beyond a full turn
// saturate at 2π (a full-circle interval).
func NewInterval(start, width float64) Interval {
	if width < 0 {
		width = 0
	}
	if width > TwoPi {
		width = TwoPi
	}
	return Interval{Start: NormAngle(start), Width: width}
}

// FullCircle returns the interval covering every angle.
func FullCircle() Interval { return Interval{Start: 0, Width: TwoPi} }

// End returns the normalized end angle of the interval (Start + Width).
func (iv Interval) End() float64 { return NormAngle(iv.Start + iv.Width) }

// IsFull reports whether the interval covers the whole circle (up to Eps).
func (iv Interval) IsFull() bool { return iv.Width >= TwoPi-Eps }

// Contains reports whether angle theta lies inside the interval, with Eps
// tolerance at both boundaries.
func (iv Interval) Contains(theta float64) bool {
	return AngleBetween(theta, iv.Start, iv.Width)
}

// Overlaps reports whether the two intervals share any angle. Boundary
// touching within Eps counts as overlap, which is the conservative choice
// for disjointness constraints: DISJOINT solutions must keep sectors
// separated by strictly more than Eps.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Width <= 0 || other.Width <= 0 {
		// A degenerate interval is a single point; it overlaps iff that
		// point is inside the other interval.
		if iv.Width <= 0 && other.Width <= 0 {
			return AngleDist(iv.Start, other.Start) <= Eps ||
				AngleDist(other.Start, iv.Start) <= Eps
		}
		if iv.Width <= 0 {
			return other.Contains(iv.Start)
		}
		return iv.Contains(other.Start)
	}
	if iv.IsFull() || other.IsFull() {
		return true
	}
	return iv.Contains(other.Start) || other.Contains(iv.Start)
}

// InteriorsOverlap reports whether the open interiors of the two intervals
// intersect. Flush intervals (one starting exactly where the other ends)
// have disjoint interiors, which is the disjointness notion the
// DisjointAngles variant uses: optimal packings routinely place sectors
// flush against each other. Zero-width intervals have empty interiors.
func (iv Interval) InteriorsOverlap(other Interval) bool {
	if iv.Width <= Eps || other.Width <= Eps {
		return false
	}
	// Disjoint interiors iff other starts at or after iv's end (clockwise)
	// AND iv starts at or after other's end.
	gapA := AngleDist(iv.Start, other.Start) // clockwise iv.Start → other.Start
	gapB := AngleDist(other.Start, iv.Start)
	return !(gapA >= iv.Width-Eps && gapB >= other.Width-Eps)
}

// ContainsInterval reports whether the entire other interval lies within iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if iv.IsFull() {
		return true
	}
	if other.Width > iv.Width+Eps {
		return false
	}
	d := AngleDist(iv.Start, other.Start)
	if d > iv.Width+Eps && TwoPi-d > Eps {
		return false
	}
	if TwoPi-d <= Eps {
		d = 0
	}
	return d+other.Width <= iv.Width+Eps
}

// ClockwiseGapTo returns the clockwise angular gap from the end of iv to the
// start of other; 0 means other begins exactly where iv ends.
func (iv Interval) ClockwiseGapTo(other Interval) float64 {
	return AngleDist(iv.End(), other.Start)
}

// String renders the interval in degrees for diagnostics.
func (iv Interval) String() string {
	return fmt.Sprintf("[%.2f°+%.2f°]", Degrees(iv.Start), Degrees(iv.Width))
}

// Disjoint reports whether every pair of intervals in the slice has
// disjoint interiors (boundary touching is allowed; see InteriorsOverlap).
func Disjoint(ivs []Interval) bool {
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].InteriorsOverlap(ivs[j]) {
				return false
			}
		}
	}
	return true
}

// TotalWidth sums the widths of the intervals; for a disjoint family this
// never exceeds 2π (a fact the DISJOINT feasibility checker exploits).
func TotalWidth(ivs []Interval) float64 {
	var w float64
	for _, iv := range ivs {
		w += iv.Width
	}
	return w
}
