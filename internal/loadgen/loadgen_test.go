package loadgen

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sectorpack/internal/daemon"
)

func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s := daemon.NewServer(daemon.Config{Seed: 1, MaxInflight: 16, ShardName: "s0"})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestClosedLoopReportShape(t *testing.T) {
	ts := testDaemon(t)
	report, err := Run(context.Background(), Config{
		BaseURL:    ts.URL,
		Workers:    4,
		Duration:   400 * time.Millisecond,
		Seed:       1,
		PoolSize:   8,
		BatchEvery: 4,
		Solvers:    []string{"greedy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 || report.OK == 0 {
		t.Fatalf("no traffic measured: %+v", report)
	}
	if report.Errors5xx != 0 || report.Transport != 0 || report.Errors4xx != 0 {
		t.Errorf("healthy daemon produced failures: %+v", report)
	}
	s := report.Shards["s0"]
	if s == nil || s.Requests == 0 {
		t.Fatalf("per-shard attribution missing: %+v", report.Shards)
	}
	// An 8-body pool replayed for 400ms must repeat, so the cache must hit.
	if s.Hits == 0 {
		t.Errorf("pool repeats produced no cache hits: %+v", s)
	}
	if s.HitRatio <= 0 {
		t.Errorf("hit ratio %v, want > 0", s.HitRatio)
	}
	lat := report.Latency
	if lat.P50MS > lat.P99MS || lat.P99MS > lat.MaxMS {
		t.Errorf("percentiles out of order: %+v", lat)
	}
	if len(report.Check(SLO{})) != 0 {
		t.Errorf("healthy run violated the default SLO: %v", report.Check(SLO{}))
	}
}

func TestOpenLoopTargetsRate(t *testing.T) {
	ts := testDaemon(t)
	report, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Mode:     Open,
		RPS:      100,
		Workers:  16,
		Duration: 400 * time.Millisecond,
		Seed:     2,
		PoolSize: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	//sectorlint:ignore floateq config round-trip: the report must echo the exact literal 100
	if report.TargetRPS != 100 {
		t.Errorf("TargetRPS %v not recorded", report.TargetRPS)
	}
	// ~40 arrivals in 400ms at 100 rps; allow wide slop for CI jitter but
	// a closed-loop-sized count would mean the clock is not driving.
	if report.Requests < 10 {
		t.Errorf("open loop fired only %d requests at 100 rps over 400ms", report.Requests)
	}
}

func TestVerifyAgainstSelfFindsNoMismatch(t *testing.T) {
	ts := testDaemon(t)
	report, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Workers:     2,
		Duration:    300 * time.Millisecond,
		Seed:        3,
		PoolSize:    4,
		VerifyBase:  ts.URL,
		VerifyEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Verify == nil || report.Verify.Checked == 0 {
		t.Fatalf("verification never ran: %+v", report.Verify)
	}
	if report.Verify.Mismatches != 0 {
		t.Errorf("deterministic daemon disagreed with itself %d times", report.Verify.Mismatches)
	}
}

func TestSLOCheckClauses(t *testing.T) {
	r := &Report{
		BaseURL:   "http://x",
		Requests:  100,
		LatencyOK: Percentiles{P99MS: 500},
		Errors5xx: 2,
		ErrorRate: 0.02,
		Shed:      30,
		ShedRate:  0.3,
		Verify:    &VerifyStats{Checked: 10, Mismatches: 1},
	}
	bad := r.Check(SLO{MaxP99MS: 100, MaxErrRate: 0.01, MaxShed: 0.1})
	wantSubstrings := []string{"p99", "error rate", "shed rate", "answers differ"}
	if len(bad) != len(wantSubstrings) {
		t.Fatalf("got %d violations %v, want %d", len(bad), bad, len(wantSubstrings))
	}
	for i, sub := range wantSubstrings {
		if !strings.Contains(bad[i], sub) {
			t.Errorf("violation %d = %q, want it to mention %q", i, bad[i], sub)
		}
	}
	// With no explicit error budget, ANY non-shed failure is a violation.
	if got := (&Report{Requests: 10, Errors5xx: 1}).Check(SLO{}); len(got) != 1 {
		t.Errorf("zero-budget 5xx: %v, want exactly one violation", got)
	}
	if got := (&Report{Requests: 10, Shed: 3, ShedRate: 0.3}).Check(SLO{}); len(got) != 0 {
		t.Errorf("shedding alone must not violate an empty SLO: %v", got)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mode: Open}); err == nil {
		t.Error("open loop without RPS accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mode: "weird"}); err == nil {
		t.Error("unknown mode accepted")
	}
}
