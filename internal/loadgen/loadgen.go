// Package loadgen drives a sectord or sectorproxy endpoint over the real
// HTTP path and measures what a client would feel: latency percentiles,
// shed/degraded/error rates, and per-shard cache behaviour.
//
// Two loop disciplines are supported. The closed loop keeps a fixed
// number of workers each waiting for its response before sending the
// next request — throughput adapts to the server, so it measures
// capacity. The open loop fires requests at a fixed arrival rate
// regardless of completions — latency under it shows queueing the way
// production traffic would, because real arrivals do not politely wait
// for the fleet to drain (the coordinated-omission trap closed loops
// fall into).
//
// The workload is a seeded pool of pre-generated instances mixed across
// internal/gen families and sizes. The pool is deliberately smaller than
// the request count: repeats are what exercise the solve cache, and with
// a fingerprint-routing proxy in front they also pin that repeats land
// on the same shard (visible in the per-shard hit ratios the report
// breaks out by X-Sectord-Shard).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"sectorpack/internal/gen"
)

// Mode selects the loop discipline.
type Mode string

const (
	// Closed keeps Workers in-flight requests: each worker sends, waits,
	// repeats. Throughput is an output.
	Closed Mode = "closed"
	// Open fires requests at RPS regardless of completions. Latency under
	// saturation is an output.
	Open Mode = "open"
)

// TierSpec is one entry of the workload mix: a named gen preset and its
// relative weight in the pool.
type TierSpec struct {
	Name   string
	Config gen.Config
	Weight int
}

// DefaultMix spans the generator families at sizes every registry solver
// (including exact) answers in milliseconds, so a short SLO run exercises
// the full solver matrix rather than one hot path.
func DefaultMix() []TierSpec {
	return []TierSpec{
		{Name: "uniform-small", Config: gen.Config{Family: gen.Uniform, N: 60, M: 6}, Weight: 4},
		{Name: "hotspot-small", Config: gen.Config{Family: gen.Hotspot, N: 80, M: 6}, Weight: 3},
		{Name: "zipf-medium", Config: gen.Config{Family: gen.Zipf, N: 150, M: 8}, Weight: 2},
		{Name: "rings-small", Config: gen.Config{Family: gen.Rings, N: 60, M: 6}, Weight: 2},
		{Name: "adversarial-small", Config: gen.Config{Family: gen.Adversarial, N: 40, M: 4}, Weight: 1},
	}
}

// Config tunes one load run.
type Config struct {
	// BaseURL is the endpoint under test (a sectord or a sectorproxy).
	BaseURL string
	// Mode is the loop discipline; empty means Closed.
	Mode Mode
	// Workers is the closed-loop concurrency (and the open loop's cap on
	// simultaneous in-flight requests, so a stalled fleet cannot leak
	// goroutines without bound). Zero means 8.
	Workers int
	// RPS is the open-loop arrival rate. Required for Open.
	RPS float64
	// Duration bounds the run. Zero means 10s.
	Duration time.Duration
	// Solvers cycles per request; empty means ["auto"].
	Solvers []string
	// Seed makes the workload reproducible: pool contents, tier choices,
	// and request interleaving all derive from it.
	Seed int64
	// Mix is the tier mix; empty means DefaultMix.
	Mix []TierSpec
	// PoolSize is the number of distinct request bodies; repeats beyond it
	// re-send earlier bodies and exercise the cache. Zero means 32.
	PoolSize int
	// BatchEvery makes every Nth request a /solve/batch of BatchSize
	// instances drawn from the pool. Zero disables batches.
	BatchEvery int
	// BatchSize is the instances per batch. Zero means 4.
	BatchSize int
	// Timeout bounds each request. Zero means 30s.
	Timeout time.Duration
	// VerifyBase, when set, replays every VerifyEvery-th /solve against
	// this second endpoint (typically a backend directly, with the proxy
	// as BaseURL) and counts answer mismatches after timing fields are
	// stripped — the differential check that routing is semantics-free.
	VerifyBase string
	// VerifyEvery is the verification sampling stride. Zero means 8.
	VerifyEvery int
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = Closed
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if len(c.Solvers) == 0 {
		c.Solvers = []string{"auto"}
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 32
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.VerifyEvery <= 0 {
		c.VerifyEvery = 8
	}
	return c
}

// request is one pre-built body from the pool.
type request struct {
	path string // "/solve" or "/solve/batch"
	tier string
	body []byte
}

// Percentiles summarises a latency distribution in milliseconds.
type Percentiles struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// ShardStats is the per-shard cache breakdown, attributed by the
// X-Sectord-Shard response header.
type ShardStats struct {
	Requests  int     `json:"requests"`
	Hits      int     `json:"cache_hits"`
	Misses    int     `json:"cache_misses"`
	Collapsed int     `json:"cache_collapsed"`
	Bypass    int     `json:"cache_bypass"`
	HitRatio  float64 `json:"hit_ratio"`
}

// VerifyStats reports the sampled proxy-vs-direct differential.
type VerifyStats struct {
	Checked    int `json:"checked"`
	Mismatches int `json:"mismatches"`
}

// Report is the machine-readable result of a run. The metadata header
// follows cmd/sectorbench's report so fleet SLO runs archive and diff the
// same way bench runs do.
type Report struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	BaseURL    string  `json:"base_url"`
	Mode       Mode    `json:"mode"`
	Workers    int     `json:"workers"`
	TargetRPS  float64 `json:"target_rps,omitempty"`
	DurationMS float64 `json:"duration_ms"`

	Requests    int     `json:"requests"`
	AchievedRPS float64 `json:"achieved_rps"`
	Latency     Percentiles
	LatencyOK   Percentiles `json:"latency_ok"` // 200s only: what a served request cost

	OK        int     `json:"ok"`
	Degraded  int     `json:"degraded"`
	Shed      int     `json:"shed"`       // 429s: deliberate, not an error
	Errors4xx int     `json:"errors_4xx"` // non-shed 4xx
	Errors5xx int     `json:"errors_5xx"` // the SLO-relevant failures
	Transport int     `json:"transport"`  // connection-level failures
	ShedRate  float64 `json:"shed_rate"`
	ErrorRate float64 `json:"error_rate"` // (5xx + transport) / requests

	Shards map[string]*ShardStats `json:"shards"`
	Verify *VerifyStats           `json:"verify,omitempty"`
}

// SLO is the gate applied to a report; zero-valued fields are not
// enforced. Violations fail the run the way sectorbench -compare fails a
// regressed benchmark.
type SLO struct {
	MaxP99MS   float64 `json:"max_p99_ms,omitempty"`
	MaxErrRate float64 `json:"max_error_rate,omitempty"`
	MaxShed    float64 `json:"max_shed_rate,omitempty"`
}

// Check returns the violated clauses, empty when the report passes. A
// verification mismatch is always a violation: it means the proxy changed
// an answer, which no threshold makes acceptable.
func (r *Report) Check(slo SLO) []string {
	var bad []string
	if slo.MaxP99MS > 0 && r.LatencyOK.P99MS > slo.MaxP99MS {
		bad = append(bad, fmt.Sprintf("p99 %.1fms exceeds SLO %.1fms", r.LatencyOK.P99MS, slo.MaxP99MS))
	}
	if slo.MaxErrRate > 0 && r.ErrorRate > slo.MaxErrRate {
		bad = append(bad, fmt.Sprintf("error rate %.4f exceeds SLO %.4f (%d×5xx, %d transport)", r.ErrorRate, slo.MaxErrRate, r.Errors5xx, r.Transport))
	}
	if slo.MaxErrRate == 0 && r.Errors5xx+r.Transport > 0 {
		bad = append(bad, fmt.Sprintf("%d non-shed 5xx and %d transport failures (no error budget configured)", r.Errors5xx, r.Transport))
	}
	if slo.MaxShed > 0 && r.ShedRate > slo.MaxShed {
		bad = append(bad, fmt.Sprintf("shed rate %.4f exceeds SLO %.4f", r.ShedRate, slo.MaxShed))
	}
	if r.Verify != nil && r.Verify.Mismatches > 0 {
		bad = append(bad, fmt.Sprintf("%d/%d verified answers differ between %s and the direct backend", r.Verify.Mismatches, r.Verify.Checked, r.BaseURL))
	}
	return bad
}

// collector accumulates per-request outcomes under one lock; the request
// rates here are far below contention territory.
type collector struct {
	mu        sync.Mutex
	latencies []float64 // ms, all requests
	okLat     []float64 // ms, 200s only
	ok        int
	degraded  int
	shed      int
	e4xx      int
	e5xx      int
	transport int
	shards    map[string]*ShardStats
	verified  int
	mismatch  int
}

// outcome is one request's observation.
type outcome struct {
	latMS     float64
	status    int // 0 = transport failure
	degraded  bool
	shard     string
	cacheDisp string
}

func (c *collector) record(o outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latencies = append(c.latencies, o.latMS)
	switch {
	case o.status == 0:
		c.transport++
	case o.status == http.StatusOK:
		c.ok++
		c.okLat = append(c.okLat, o.latMS)
		if o.degraded {
			c.degraded++
		}
	case o.status == http.StatusTooManyRequests:
		c.shed++
	case o.status >= 500:
		c.e5xx++
	default:
		c.e4xx++
	}
	if o.status != 0 {
		shard := o.shard
		if shard == "" {
			shard = "unknown"
		}
		s := c.shards[shard]
		if s == nil {
			s = &ShardStats{}
			c.shards[shard] = s
		}
		s.Requests++
		switch o.cacheDisp {
		case "hit":
			s.Hits++
		case "miss":
			s.Misses++
		case "collapsed":
			s.Collapsed++
		case "bypass":
			s.Bypass++
		}
	}
}

// Run executes the configured load against cfg.BaseURL and returns the
// report. It honours ctx: cancellation stops the run early and reports
// what was measured so far.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if cfg.Mode != Closed && cfg.Mode != Open {
		return nil, fmt.Errorf("loadgen: unknown mode %q (want %q or %q)", cfg.Mode, Closed, Open)
	}
	if cfg.Mode == Open && cfg.RPS <= 0 {
		return nil, fmt.Errorf("loadgen: open-loop mode needs RPS > 0")
	}
	pool, err := buildPool(cfg)
	if err != nil {
		return nil, err
	}
	col := &collector{shards: map[string]*ShardStats{}}
	hc := &http.Client{Timeout: cfg.Timeout}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var next int64
	var mu sync.Mutex
	take := func() *request {
		mu.Lock()
		i := next
		next++
		mu.Unlock()
		return &pool[int(i)%len(pool)]
	}

	fire := func() {
		req := take()
		o := shoot(runCtx, hc, cfg.BaseURL, req)
		if o.status == 0 && runCtx.Err() != nil {
			// The run deadline cancelled this request mid-flight. That is
			// the harness truncating its own measurement window, not the
			// server failing — recording it would charge every run a few
			// phantom transport errors.
			return
		}
		col.record(o)
		if cfg.VerifyBase != "" && req.path == "/solve" && o.status == http.StatusOK {
			col.mu.Lock()
			due := col.verified*cfg.VerifyEvery <= col.ok
			col.mu.Unlock()
			if due {
				verifyOne(runCtx, hc, cfg, col, req)
			}
		}
	}

	var wg sync.WaitGroup
	switch cfg.Mode {
	case Closed:
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if runCtx.Err() != nil {
						return
					}
					fire()
				}
			}()
		}
	case Open:
		// Arrivals are a fixed-rate clock. The semaphore bounds in-flight
		// requests; an arrival finding it full means the fleet is further
		// behind than Workers requests — recorded as a transport-class
		// failure rather than silently skipped, because dropped load is
		// exactly what an open-loop test exists to surface.
		sem := make(chan struct{}, cfg.Workers)
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		if interval <= 0 {
			interval = time.Millisecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
	arrivals:
		for {
			select {
			case <-runCtx.Done():
				break arrivals
			case <-tick.C:
				select {
				case sem <- struct{}{}:
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						if runCtx.Err() != nil {
							return
						}
						fire()
					}()
				default:
					col.record(outcome{latMS: 0, status: 0})
				}
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	return assemble(cfg, col, elapsed), nil
}

// shoot issues one request and observes the response without retries —
// the load generator measures raw server behaviour; retry policy belongs
// to real clients.
func shoot(ctx context.Context, hc *http.Client, base string, req *request) outcome {
	start := time.Now()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+req.path, bytes.NewReader(req.body))
	if err != nil {
		return outcome{latMS: msSince(start)}
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(httpReq)
	if err != nil {
		return outcome{latMS: msSince(start)}
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	o := outcome{
		latMS:     msSince(start),
		status:    resp.StatusCode,
		shard:     resp.Header.Get("X-Sectord-Shard"),
		cacheDisp: resp.Header.Get("X-Sectord-Cache"),
	}
	if resp.StatusCode == http.StatusOK {
		var probe struct {
			Degraded bool `json:"degraded"`
		}
		if json.Unmarshal(body, &probe) == nil {
			o.degraded = probe.Degraded
		}
	}
	return o
}

// verifyOne replays the request against the direct backend and compares
// the two answers with timing stripped.
func verifyOne(ctx context.Context, hc *http.Client, cfg Config, col *collector, req *request) {
	a, aOK := fetchNormalized(ctx, hc, cfg.BaseURL+req.path, req.body)
	b, bOK := fetchNormalized(ctx, hc, cfg.VerifyBase+req.path, req.body)
	if !aOK || !bOK {
		return // a transient failure is not a mismatch
	}
	col.mu.Lock()
	col.verified++
	if !reflect.DeepEqual(a, b) {
		col.mismatch++
	}
	col.mu.Unlock()
}

func fetchNormalized(ctx context.Context, hc *http.Client, url string, body []byte) (map[string]any, bool) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(httpReq)
	if err != nil {
		return nil, false
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, false
	}
	delete(m, "elapsed_ms")
	return m, true
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// buildPool pre-generates the request bodies so generation cost never
// pollutes measured latency, and so the same seed replays the same
// workload byte-for-byte.
func buildPool(cfg Config) ([]request, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := 0
	for _, t := range cfg.Mix {
		if t.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: tier %q has non-positive weight", t.Name)
		}
		total += t.Weight
	}
	pickTier := func() TierSpec {
		n := rng.Intn(total)
		for _, t := range cfg.Mix {
			if n < t.Weight {
				return t
			}
			n -= t.Weight
		}
		return cfg.Mix[len(cfg.Mix)-1]
	}
	type solveReq struct {
		Solver        string `json:"solver,omitempty"`
		FormatVersion int    `json:"format_version"`
		Instance      any    `json:"instance"`
	}
	var instances []any // raw instances, for batch composition
	var pool []request
	for i := 0; i < cfg.PoolSize; i++ {
		tier := pickTier()
		gcfg := tier.Config
		gcfg.Seed = cfg.Seed + int64(i)*7919
		in, err := gen.Generate(gcfg)
		if err != nil {
			return nil, fmt.Errorf("loadgen: tier %q: %w", tier.Name, err)
		}
		solver := cfg.Solvers[i%len(cfg.Solvers)]
		if solver == "auto" {
			solver = ""
		}
		instances = append(instances, in)
		if cfg.BatchEvery > 0 && (i+1)%cfg.BatchEvery == 0 {
			k := cfg.BatchSize
			if k > len(instances) {
				k = len(instances)
			}
			body, err := json.Marshal(map[string]any{
				"solver":         solver,
				"format_version": 1,
				"instances":      instances[len(instances)-k:],
			})
			if err != nil {
				return nil, err
			}
			pool = append(pool, request{path: "/solve/batch", tier: tier.Name, body: body})
			continue
		}
		body, err := json.Marshal(solveReq{Solver: solver, FormatVersion: 1, Instance: in})
		if err != nil {
			return nil, err
		}
		pool = append(pool, request{path: "/solve", tier: tier.Name, body: body})
	}
	// Shuffle so tiers interleave rather than clump by pool order.
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool, nil
}

func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Percentiles{
		P50MS:  at(0.50),
		P90MS:  at(0.90),
		P99MS:  at(0.99),
		P999MS: at(0.999),
		MeanMS: sum / float64(len(sorted)),
		MaxMS:  sorted[len(sorted)-1],
	}
}

func assemble(cfg Config, col *collector, elapsed time.Duration) *Report {
	col.mu.Lock()
	defer col.mu.Unlock()
	n := len(col.latencies)
	r := &Report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		BaseURL:    cfg.BaseURL,
		Mode:       cfg.Mode,
		Workers:    cfg.Workers,
		DurationMS: float64(elapsed) / float64(time.Millisecond),
		Requests:   n,
		Latency:    percentiles(col.latencies),
		LatencyOK:  percentiles(col.okLat),
		OK:         col.ok,
		Degraded:   col.degraded,
		Shed:       col.shed,
		Errors4xx:  col.e4xx,
		Errors5xx:  col.e5xx,
		Transport:  col.transport,
		Shards:     col.shards,
	}
	if cfg.Mode == Open {
		r.TargetRPS = cfg.RPS
	}
	if elapsed > 0 {
		r.AchievedRPS = float64(n) / elapsed.Seconds()
	}
	if n > 0 {
		r.ShedRate = float64(col.shed) / float64(n)
		r.ErrorRate = float64(col.e5xx+col.transport) / float64(n)
	}
	for _, s := range r.Shards {
		if looked := s.Hits + s.Misses; looked > 0 {
			s.HitRatio = float64(s.Hits) / float64(looked)
		}
	}
	if cfg.VerifyBase != "" {
		r.Verify = &VerifyStats{Checked: col.verified, Mismatches: col.mismatch}
	}
	return r
}
