// Package reduce implements optimum-preserving instance preprocessing:
// cheap transformations that shrink an instance before the solvers run and
// a lift that maps a solution of the reduced instance back to the
// original. Every reduction is exact — the reduced instance has the same
// optimal profit as the original — and the tests verify that claim against
// the exhaustive solver on random instances.
//
// Reductions applied by Apply, in order:
//
//  1. DropUnreachable — customers radially out of range of every antenna
//     (or blocked by every antenna's MinRange) can never be served; remove
//     them.
//  2. DropZeroProfit — customers with zero profit never contribute to the
//     objective; remove them (they only occupy capacity if forcibly
//     assigned, which no maximizing solver does).
//  3. TightenCapacities — an antenna's capacity above the total reachable
//     demand is slack; clamping it shrinks the pseudo-polynomial DP tables
//     without touching the feasible assignments.
//  4. GCDScale — when every demand and every capacity share a common
//     divisor g > 1, dividing through by g preserves the feasible
//     assignments exactly and divides knapsack DP table sizes by g.
package reduce

import (
	"fmt"

	"sectorpack/internal/model"
)

// Result carries the reduced instance and the bookkeeping to lift a
// solution back to the original.
type Result struct {
	Reduced *model.Instance
	// origCustomer[i] is the original index of reduced customer i.
	origCustomer []int
	// origN is the original customer count.
	origN int
	// demandScale is the GCD the demands/capacities were divided by.
	demandScale int64
	// Notes describes the reductions that fired, for logs.
	Notes []string
}

// Apply runs all reductions on a copy of the instance (the input is not
// mutated).
func Apply(in *model.Instance) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("reduce: %w", err)
	}
	res := &Result{origN: in.N(), demandScale: 1}
	cur := in.Clone()

	// 1+2: drop unreachable and zero-profit customers.
	kept := cur.Customers[:0]
	dropped := 0
	for i, c := range cur.Customers {
		reachable := false
		for _, a := range cur.Antennas {
			if a.InRange(c) && c.Demand <= a.Capacity {
				reachable = true
				break
			}
		}
		if reachable && c.Profit > 0 {
			res.origCustomer = append(res.origCustomer, i)
			kept = append(kept, c)
		} else {
			dropped++
		}
	}
	cur.Customers = kept
	if dropped > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("dropped %d unreachable/zero-profit customers", dropped))
	}

	// 3: tighten capacities to the total reachable demand per antenna.
	for j := range cur.Antennas {
		var reach int64
		for _, c := range cur.Customers {
			if cur.Antennas[j].InRange(c) {
				reach += c.Demand
			}
		}
		if cur.Antennas[j].Capacity > reach {
			cur.Antennas[j].Capacity = reach
			res.Notes = append(res.Notes, fmt.Sprintf("tightened antenna %d capacity to %d", j, reach))
		}
	}

	// 4: demand/capacity GCD scaling.
	g := int64(0)
	for _, c := range cur.Customers {
		g = gcd(g, c.Demand)
	}
	for _, a := range cur.Antennas {
		g = gcd(g, a.Capacity)
	}
	if g > 1 {
		for i := range cur.Customers {
			cur.Customers[i].Demand /= g
		}
		for j := range cur.Antennas {
			cur.Antennas[j].Capacity /= g
		}
		res.demandScale = g
		res.Notes = append(res.Notes, fmt.Sprintf("scaled demands/capacities by 1/%d", g))
	}

	cur.Normalize()
	res.Reduced = cur
	return res, nil
}

// Lift maps an assignment of the reduced instance back to the original:
// dropped customers stay unassigned, orientations carry over, and demand
// scaling needs no inverse (ownership is scale-invariant).
func (r *Result) Lift(reduced *model.Assignment) *model.Assignment {
	out := model.NewAssignment(r.origN, len(reduced.Orientation))
	copy(out.Orientation, reduced.Orientation)
	for i, owner := range reduced.Owner {
		if owner != model.Unassigned {
			out.Owner[r.origCustomer[i]] = owner
		}
	}
	return out
}

// Shrunk reports whether any reduction changed the instance.
func (r *Result) Shrunk() bool { return len(r.Notes) > 0 }

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}
