package reduce

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/exact"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

func randInstance(rng *rand.Rand, n, m int) *model.Instance {
	in := &model.Instance{Variant: model.Sectors}
	for i := 0; i < n; i++ {
		in.Customers = append(in.Customers, model.Customer{
			Theta:  rng.Float64() * geom.TwoPi,
			R:      rng.Float64() * 14, // some beyond range by design
			Demand: 2 * (1 + rng.Int63n(5)),
		})
	}
	for j := 0; j < m; j++ {
		in.Antennas = append(in.Antennas, model.Antenna{
			Rho: 0.5 + rng.Float64(), Range: 3 + rng.Float64()*6,
			Capacity: 2 * (3 + rng.Int63n(10)),
		})
	}
	return in.Normalize()
}

func TestApplyPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 3+rng.Intn(7), 1+rng.Intn(2))
		before, err := exact.Solve(context.Background(), in, exact.Limits{})
		if err != nil {
			t.Fatalf("exact before: %v", err)
		}
		r, err := Apply(in)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		after, err := exact.Solve(context.Background(), r.Reduced, exact.Limits{})
		if err != nil {
			t.Fatalf("exact after: %v", err)
		}
		if before.Profit != after.Profit {
			t.Fatalf("reduction changed optimum: %d -> %d (notes %v)", before.Profit, after.Profit, r.Notes)
		}
		// Lifted solution must be feasible on the original with the same profit.
		lifted := r.Lift(after.Assignment)
		if err := lifted.Check(in); err != nil {
			t.Fatalf("lifted assignment infeasible: %v", err)
		}
		if got := lifted.Profit(in); got != after.Profit {
			t.Fatalf("lifted profit %d != reduced profit %d", got, after.Profit)
		}
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	in := randInstance(rng, 10, 2)
	snapshot := in.Clone()
	if _, err := Apply(in); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for i := range snapshot.Customers {
		if in.Customers[i] != snapshot.Customers[i] {
			t.Fatal("Apply mutated input customers")
		}
	}
	for j := range snapshot.Antennas {
		if in.Antennas[j] != snapshot.Antennas[j] {
			t.Fatal("Apply mutated input antennas")
		}
	}
}

func TestDropUnreachable(t *testing.T) {
	in := &model.Instance{
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 0.1, R: 2, Demand: 3},
			{Theta: 0.2, R: 50, Demand: 3},            // out of range
			{Theta: 0.3, R: 2, Demand: 99},            // exceeds every capacity
			{Theta: 0.4, R: 2, Demand: 3, Profit: -0}, // profit defaults to demand
		},
		Antennas: []model.Antenna{{Rho: 1, Range: 5, Capacity: 10}},
	}
	in.Normalize()
	r, err := Apply(in)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if r.Reduced.N() != 2 {
		t.Fatalf("kept %d customers, want 2", r.Reduced.N())
	}
	if !r.Shrunk() {
		t.Error("Shrunk should report the drop")
	}
}

func TestGCDScale(t *testing.T) {
	in := &model.Instance{
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 0.1, R: 2, Demand: 6},
			{Theta: 0.2, R: 2, Demand: 9},
		},
		Antennas: []model.Antenna{{Rho: 1, Range: 5, Capacity: 12}},
	}
	in.Normalize()
	r, err := Apply(in)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// capacity first tightens to reachable demand 15, then gcd(6,9,15)=3
	if r.demandScale != 3 {
		t.Fatalf("scale = %d, want 3 (notes %v)", r.demandScale, r.Notes)
	}
	if r.Reduced.Customers[0].Demand != 2 || r.Reduced.Customers[1].Demand != 3 {
		t.Fatalf("scaled demands = %d, %d", r.Reduced.Customers[0].Demand, r.Reduced.Customers[1].Demand)
	}
	// profits untouched
	if r.Reduced.Customers[0].Profit != 6 {
		t.Fatalf("profit changed: %d", r.Reduced.Customers[0].Profit)
	}
}

func TestTightenCapacities(t *testing.T) {
	in := &model.Instance{
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 0.1, R: 2, Demand: 5},
		},
		Antennas: []model.Antenna{{Rho: 1, Range: 5, Capacity: 1000}},
	}
	in.Normalize()
	r, err := Apply(in)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if r.Reduced.Antennas[0].Capacity != 1 { // tightened to 5, then gcd 5 scales to 1
		t.Fatalf("capacity = %d, want 1 after tighten+scale (notes %v)", r.Reduced.Antennas[0].Capacity, r.Notes)
	}
}

func TestReducedSolveMatchesThroughGreedy(t *testing.T) {
	// End-to-end: solving the reduced instance and lifting must be
	// feasible on the original and match the reduced profit.
	rng := rand.New(rand.NewSource(153))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, 20, 3)
		r, err := Apply(in)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		sol, err := core.SolveGreedy(context.Background(), r.Reduced, core.Options{SkipBound: true})
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		lifted := r.Lift(sol.Assignment)
		if err := lifted.Check(in); err != nil {
			t.Fatalf("lifted infeasible: %v", err)
		}
		if lifted.Profit(in) != sol.Profit {
			t.Fatalf("lifted profit %d != %d", lifted.Profit(in), sol.Profit)
		}
	}
}

func TestEmptyAndNoopInstances(t *testing.T) {
	empty := (&model.Instance{Variant: model.Angles}).Normalize()
	r, err := Apply(empty)
	if err != nil {
		t.Fatalf("Apply empty: %v", err)
	}
	if r.Reduced.N() != 0 {
		t.Fatal("empty stays empty")
	}
	// Already-minimal instance: nothing fires except possibly tightening.
	in := &model.Instance{
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 0.1, R: 2, Demand: 1},
			{Theta: 0.2, R: 2, Demand: 2},
		},
		Antennas: []model.Antenna{{Rho: 1, Range: 5, Capacity: 3}},
	}
	in.Normalize()
	r, err = Apply(in)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if r.Shrunk() {
		t.Errorf("no reduction should fire, got notes %v", r.Notes)
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	bad := &model.Instance{
		Variant:   model.Sectors,
		Customers: []model.Customer{{ID: 0, Theta: 0.1, R: 1, Demand: -4}},
	}
	if _, err := Apply(bad); err == nil {
		t.Error("invalid instance must be rejected")
	}
}
