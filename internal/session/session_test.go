package session

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// solutionString renders a solution at full precision (the cache
// differential suite's shape, plus the upper bound): any drift between the
// incremental and from-scratch paths shows up as a string diff.
func solutionString(sol model.Solution) string {
	return fmt.Sprintf("profit=%d alg=%s degraded=%v ub=%.17g orient=%v owner=%v",
		sol.Profit, sol.Algorithm, sol.Degraded, sol.UpperBound,
		fmt.Sprintf("%.17g", sol.Assignment.Orientation), sol.Assignment.Owner)
}

func instanceJSON(t *testing.T, in *model.Instance) string {
	t.Helper()
	var buf bytes.Buffer
	if err := model.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// churnCase picks a trace every solver accepts: disjoint-dp needs the
// DisjointAngles variant, exact needs a tiny instance, unitflow needs unit
// demands; everyone else gets a banded Sectors instance with localized
// churn — the regime the incremental path is built for.
func churnCase(solver string) gen.ChurnConfig {
	switch solver {
	case "disjoint-dp":
		return gen.ChurnConfig{
			Base:  gen.Config{Family: gen.Uniform, Seed: 11, N: 12, M: 2, Variant: model.DisjointAngles},
			Steps: 4, Rate: 0.1,
		}
	case "exact":
		return gen.ChurnConfig{
			Base:  gen.Config{Family: gen.Uniform, Seed: 13, N: 8, M: 2, Tightness: 2},
			Steps: 3, Rate: 0.15,
		}
	case "unitflow":
		return gen.ChurnConfig{
			Base:  gen.Config{Family: gen.Uniform, Seed: 7, N: 30, M: 3, UnitDemand: true, Tightness: 2},
			Steps: 4, Rate: 0.05,
		}
	default:
		return gen.ChurnConfig{
			Base:          gen.Config{Family: gen.Uniform, Seed: 9, N: 60, M: 6, Bands: 3, Tightness: 2, ProfitSpread: 0.4},
			Steps:         5,
			Rate:          0.05,
			Localized:     true,
			CapacityEvery: 2,
		}
	}
}

// TestDifferentialChurnAllSolvers is the session's central correctness
// claim, for every registered solver: after every delta of a generated
// churn trace, the session's incrementally-produced answer is bit-identical
// to a from-scratch solve of the independently materialized instance, and
// the session's instance state matches that materialization byte for byte.
func TestDifferentialChurnAllSolvers(t *testing.T) {
	for _, name := range core.Names() {
		if strings.HasPrefix(name, "test-") {
			continue // solvers injected by other tests in this package tree
		}
		t.Run(name, func(t *testing.T) {
			tr := gen.MustGenerateTrace(churnCase(name))
			opt := Options{Solver: name, Core: core.Options{Seed: 3}}
			solver, err := core.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			fromScratch := func(step int) string {
				mat, err := tr.Materialize(step)
				if err != nil {
					t.Fatalf("materialize %d: %v", step, err)
				}
				sol, err := solver(context.Background(), mat, opt.Core)
				if err != nil {
					t.Fatalf("from-scratch solve at step %d: %v", step, err)
				}
				return solutionString(sol)
			}

			s, err := New(context.Background(), tr.Instance, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := solutionString(s.Solution()), fromScratch(0); got != want {
				t.Fatalf("initial solve drifted:\n got  %s\n want %s", got, want)
			}
			for k, d := range tr.Deltas {
				sol, err := s.Apply(context.Background(), d)
				if err != nil {
					t.Fatalf("delta %d: %v", k, err)
				}
				mat, err := tr.Materialize(k + 1)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := instanceJSON(t, s.Instance()), instanceJSON(t, mat); got != want {
					t.Fatalf("delta %d: session instance diverged from materialization", k)
				}
				if err := core.VerifySolution(name, mat, sol); err != nil {
					t.Fatalf("delta %d: session answer infeasible: %v", k, err)
				}
				if got, want := solutionString(sol), fromScratch(k+1); got != want {
					t.Fatalf("delta %d drifted from from-scratch:\n got  %s\n want %s", k, got, want)
				}
				if got := solutionString(s.Solution()); got != solutionString(sol) {
					t.Fatalf("delta %d: Solution() disagrees with Apply's return", k)
				}
			}
		})
	}
}

// TestCascadeReusesWarmState: on a banded instance with localized churn,
// the incremental machinery must actually fire — sweeps survive the rebase
// and greedy steps replay — otherwise the differential suite is only
// testing a slow path that never ships.
func TestCascadeReusesWarmState(t *testing.T) {
	tr := gen.MustGenerateTrace(gen.ChurnConfig{
		Base:      gen.Config{Family: gen.Uniform, Seed: 21, N: 2000, M: 10, Bands: 10, Tightness: 4, ProfitSpread: 0.4},
		Steps:     3,
		Rate:      0.01,
		Localized: true,
		// PocketFrac 0.1 spans ~1 of 10 equal-area bands.
	})
	s, err := New(context.Background(), tr.Instance, Options{Core: core.Options{SkipBound: true}})
	if err != nil {
		t.Fatal(err)
	}
	for k, d := range tr.Deltas {
		if _, err := s.Apply(context.Background(), d); err != nil {
			t.Fatalf("delta %d: %v", k, err)
		}
	}
	st := s.Stats()
	if st.Deltas != 3 || st.Solves != 4 {
		t.Fatalf("stats %+v, want 3 deltas / 4 solves", st)
	}
	if st.SweepsKept == 0 {
		t.Errorf("no sweep survived any rebase: %+v", st)
	}
	if st.StepsReused == 0 {
		t.Errorf("no greedy step was ever replayed: %+v", st)
	}
	if st.SweepsKept < st.SweepsDropped {
		t.Errorf("localized churn dropped more sweeps (%d) than it kept (%d)", st.SweepsDropped, st.SweepsKept)
	}
}

// TestSessionRecoversAfterFailedSolve: a cancelled re-solve leaves the
// session on the new instance with the trace dropped; the next Apply must
// still produce the bit-exact from-scratch answer.
func TestSessionRecoversAfterFailedSolve(t *testing.T) {
	tr := gen.MustGenerateTrace(gen.ChurnConfig{
		Base:  gen.Config{Family: gen.Uniform, Seed: 5, N: 80, M: 4, Bands: 2, Tightness: 2},
		Steps: 2, Rate: 0.05,
	})
	s, err := New(context.Background(), tr.Instance, Options{Core: core.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Apply(cancelled, tr.Deltas[0]); err == nil {
		t.Fatal("cancelled Apply should fail")
	}
	// The delta itself was applied; the solve wasn't. The next Apply picks
	// up from the advanced instance.
	sol, err := s.Apply(context.Background(), tr.Deltas[1])
	if err != nil {
		t.Fatal(err)
	}
	mat, err := tr.Materialize(2)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.Get("greedy")
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver(context.Background(), mat, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, w := solutionString(sol), solutionString(want); got != w {
		t.Fatalf("post-recovery answer drifted:\n got  %s\n want %s", got, w)
	}
}

// TestSessionRejects: invalid inputs fail fast and leave the session
// usable.
func TestSessionRejects(t *testing.T) {
	in := gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 2, N: 20, M: 2, Tightness: 2})
	if _, err := New(context.Background(), nil, Options{}); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := New(context.Background(), in, Options{Solver: "no-such-solver"}); err == nil {
		t.Error("unknown solver accepted")
	}
	s, err := New(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := solutionString(s.Solution())
	if _, err := s.Apply(context.Background(), model.Delta{Remove: []int{99}}); err == nil {
		t.Error("out-of-range delta accepted")
	}
	if got := solutionString(s.Solution()); got != before {
		t.Error("rejected delta perturbed the session")
	}
	if st := s.Stats(); st.Deltas != 0 {
		t.Errorf("rejected delta counted: %+v", st)
	}
	// Still usable after the rejection.
	if _, err := s.Apply(context.Background(), model.Delta{Remove: []int{0}}); err != nil {
		t.Errorf("session unusable after rejected delta: %v", err)
	}
}

// TestSessionCallerInstanceUntouched: New clones; churning the session must
// never write through to the caller's instance.
func TestSessionCallerInstanceUntouched(t *testing.T) {
	in := gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 4, N: 30, M: 2, Tightness: 2})
	before := instanceJSON(t, in)
	s, err := New(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), model.Delta{Remove: []int{1, 3}}); err != nil {
		t.Fatal(err)
	}
	if got := instanceJSON(t, in); got != before {
		t.Error("session wrote through to the caller's instance")
	}
}
