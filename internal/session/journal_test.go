package session

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/faultfs"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// journalTrace is the churn scenario the journal tests share: small enough
// for a per-operation crash matrix, banded so the incremental path fires.
func journalTrace() *model.Trace {
	return gen.MustGenerateTrace(gen.ChurnConfig{
		Base:          gen.Config{Family: gen.Uniform, Seed: 41, N: 30, M: 4, Bands: 3, Tightness: 2, ProfitSpread: 0.4},
		Steps:         4,
		Rate:          0.1,
		Localized:     true,
		CapacityEvery: 2,
	})
}

// writeJournal creates a journal for the trace and appends its first k
// deltas with keys "idem-0".."idem-k-1".
func writeJournal(t *testing.T, fsys faultfs.FS, path string, tr *model.Trace, k, syncEvery int) {
	t.Helper()
	opt := Options{Solver: "greedy", Core: core.Options{Seed: 3}}
	j, err := CreateJournal(fsys, path, opt, tr.Instance, syncEvery)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := j.AppendDelta(tr.Deltas[i], fmt.Sprintf("idem-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// fromScratch solves the trace's step-k materialization directly.
func fromScratch(t *testing.T, tr *model.Trace, k int, opt core.Options) string {
	t.Helper()
	mat, err := tr.Materialize(k)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.Get("greedy")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver(context.Background(), mat, opt)
	if err != nil {
		t.Fatal(err)
	}
	return solutionString(sol)
}

func TestJournalRoundTripAndReplay(t *testing.T) {
	tr := journalTrace()
	path := filepath.Join(t.TempDir(), "s.journal")
	writeJournal(t, faultfs.OS, path, tr, len(tr.Deltas), 1)

	rec, err := ReadJournal(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", rec.TruncatedBytes)
	}
	if rec.Solver != "greedy" || rec.Core.Seed != 3 {
		t.Fatalf("recovered options %q/%+v", rec.Solver, rec.Core)
	}
	if len(rec.Deltas) != len(tr.Deltas) {
		t.Fatalf("recovered %d deltas, want %d", len(rec.Deltas), len(tr.Deltas))
	}
	if got, want := rec.LastIdemKey(), fmt.Sprintf("idem-%d", len(tr.Deltas)-1); got != want {
		t.Fatalf("last idempotency key %q, want %q", got, want)
	}
	s, err := rec.Replay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := solutionString(s.Solution()), fromScratch(t, tr, len(tr.Deltas), rec.Core); got != want {
		t.Fatalf("replayed session drifted from from-scratch solve:\n got  %s\n want %s", got, want)
	}
	mat, err := tr.Materialize(len(tr.Deltas))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := instanceJSON(t, s.Instance()), instanceJSON(t, mat); got != want {
		t.Fatal("replayed session instance diverged from materialization")
	}
}

// TestJournalSyncCadence pins the group-commit contract on the recorded op
// log: syncEvery=1 fsyncs once per append; syncEvery=3 batches, with Close
// flushing the remainder. (The injector cannot simulate page-cache loss, so
// the cadence is the testable face of the durability guarantee.)
func TestJournalSyncCadence(t *testing.T) {
	tr := journalTrace()
	countSyncs := func(syncEvery int) (syncs int) {
		inj := faultfs.NewInjector(faultfs.OS)
		writeJournal(t, inj, filepath.Join(t.TempDir(), "s.journal"), tr, 4, syncEvery)
		for _, r := range inj.Log() {
			if r.Op == faultfs.OpSync {
				syncs++
			}
		}
		return syncs
	}
	// 1 create-record sync + 4 per-append syncs.
	if got := countSyncs(1); got != 5 {
		t.Fatalf("syncEvery=1: %d fsyncs for 4 appends, want 5", got)
	}
	// 1 create-record sync + one batch of 3 + Close flushing the 4th.
	if got := countSyncs(3); got != 3 {
		t.Fatalf("syncEvery=3: %d fsyncs for 4 appends, want 3", got)
	}
}

// TestJournalTornTail cuts bytes off the end of a clean journal at every
// possible length: recovery must always yield an exact prefix of the delta
// stream (never an error past the create record, never a corrupt record),
// truncate the file back to that prefix, and leave it appendable.
func TestJournalTornTail(t *testing.T) {
	tr := journalTrace()
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.journal")
	writeJournal(t, faultfs.OS, clean, tr, len(tr.Deltas), 1)
	raw, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}

	opt := core.Options{Seed: 3}
	prevPrefix := -1
	for cut := len(raw) - 1; cut >= 0; cut-- {
		path := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := ReadJournal(faultfs.OS, path)
		if err != nil {
			// Acceptable only when the create record itself is torn: the
			// session then cleanly does not exist.
			continue
		}
		if rec.TruncatedBytes == 0 && cut != len(raw) {
			// A shorter file that parses fully must be an exact frame
			// boundary; fine.
		}
		k := len(rec.Deltas)
		if k > len(tr.Deltas) {
			t.Fatalf("cut %d: recovered %d deltas from a %d-delta journal", cut, k, len(tr.Deltas))
		}
		// The file must now be clean: a second read recovers the same
		// prefix with nothing left to truncate.
		rec2, err := ReadJournal(faultfs.OS, path)
		if err != nil {
			t.Fatalf("cut %d: re-read after truncation: %v", cut, err)
		}
		if len(rec2.Deltas) != k || rec2.TruncatedBytes != 0 {
			t.Fatalf("cut %d: re-read recovered %d deltas (%d truncated), want %d (0)",
				cut, len(rec2.Deltas), rec2.TruncatedBytes, k)
		}
		// Replay only on prefix-length changes — replaying every cut would
		// re-solve the same states hundreds of times for no extra coverage.
		if k != prevPrefix {
			prevPrefix = k
			s, err := rec.Replay(context.Background())
			if err != nil {
				t.Fatalf("cut %d: replay: %v", cut, err)
			}
			if got, want := solutionString(s.Solution()), fromScratch(t, tr, k, opt); got != want {
				t.Fatalf("cut %d (%d deltas): replay drifted:\n got  %s\n want %s", cut, k, got, want)
			}
			// The truncated journal accepts further appends.
			if k < len(tr.Deltas) {
				j, err := OpenAppend(faultfs.OS, path, 1)
				if err != nil {
					t.Fatalf("cut %d: reopen: %v", cut, err)
				}
				if err := j.AppendDelta(tr.Deltas[k], "idem-resumed"); err != nil {
					t.Fatal(err)
				}
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				rec3, err := ReadJournal(faultfs.OS, path)
				if err != nil {
					t.Fatalf("cut %d: read after resumed append: %v", cut, err)
				}
				if len(rec3.Deltas) != k+1 || rec3.LastIdemKey() != "idem-resumed" {
					t.Fatalf("cut %d: resumed journal has %d deltas (last key %q), want %d",
						cut, len(rec3.Deltas), rec3.LastIdemKey(), k+1)
				}
			}
		}
	}
}

// TestJournalCorruptFrameEndsLog flips one byte inside the second delta
// frame: recovery keeps the create record and first delta, drops everything
// from the corrupt frame on, and truncates the file there.
func TestJournalCorruptFrameEndsLog(t *testing.T) {
	tr := journalTrace()
	path := filepath.Join(t.TempDir(), "s.journal")
	writeJournal(t, faultfs.OS, path, tr, 3, 1)
	clean, err := ReadJournal(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Deltas) != 3 {
		t.Fatalf("setup: %d deltas", len(clean.Deltas))
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte near the end of the second-to-last frame's payload
	// (well past the create record and first delta).
	cleanLen := len(raw)
	raw[cleanLen-40] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadJournal(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Deltas) >= 3 {
		t.Fatalf("corrupt frame did not end the log: %d deltas recovered", len(rec.Deltas))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("corruption not reflected in TruncatedBytes")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(cleanLen) {
		t.Fatalf("file not truncated: %d bytes, was %d", st.Size(), cleanLen)
	}
}

func TestJournalBadHeaderIsFatal(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty":       {},
		"short":       []byte("SPJ"),
		"wrong-magic": []byte("NOTJRNL\n\x01\x00\x00\x00\x00\x00\x00\x00"),
		"no-create":   []byte(journalMagic + "\x01\x00\x00\x00\x00\x00\x00\x00"),
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, content, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadJournal(faultfs.OS, path); err == nil {
				t.Fatal("unusable journal accepted")
			}
		})
	}
}

// TestJournalCrashMatrix kills the writer at every filesystem operation of
// a create+append workload (syncEvery=1) and checks the recovery invariant
// on whatever survived: either ReadJournal rejects the file (the session
// cleanly does not exist) or it recovers an exact delta prefix whose replay
// is bit-identical to the from-scratch solve of that prefix's
// materialization. Never a corrupt session.
func TestJournalCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is a long test")
	}
	tr := journalTrace()
	opt := core.Options{Seed: 3}
	appends := 3

	workload := func(fsys faultfs.FS, path string) error {
		j, err := CreateJournal(fsys, path, Options{Solver: "greedy", Core: opt}, tr.Instance, 1)
		if err != nil {
			return err
		}
		for i := 0; i < appends; i++ {
			if err := j.AppendDelta(tr.Deltas[i], fmt.Sprintf("idem-%d", i)); err != nil {
				return err
			}
		}
		return j.Close()
	}

	counter := faultfs.NewInjector(faultfs.OS)
	if err := workload(counter, filepath.Join(t.TempDir(), "s.journal")); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 6 {
		t.Fatalf("suspiciously few ops: %d", total)
	}

	replayed := map[int]bool{} // prefix lengths already replay-verified
	for k := int64(1); k <= total; k++ {
		path := filepath.Join(t.TempDir(), "s.journal")
		inj := faultfs.NewInjector(faultfs.OS, faultfs.Fault{N: k, Mode: faultfs.Crash})
		if err := workload(inj, path); err == nil {
			t.Fatalf("crash at op %d: workload reported success", k)
		}
		if !inj.Crashed() {
			t.Fatalf("crash at op %d did not fire", k)
		}
		rec, err := ReadJournal(faultfs.OS, path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // crashed before the file existed: cleanly absent
			}
			continue // unusable journal: session cleanly not recovered
		}
		n := len(rec.Deltas)
		if n > appends {
			t.Fatalf("crash at op %d: recovered %d deltas, only %d were appended", k, n, appends)
		}
		if replayed[n] {
			continue
		}
		replayed[n] = true
		s, err := rec.Replay(context.Background())
		if err != nil {
			t.Fatalf("crash at op %d: replay of recovered journal failed: %v", k, err)
		}
		if got, want := solutionString(s.Solution()), fromScratch(t, tr, n, opt); got != want {
			t.Fatalf("crash at op %d: recovered session (%d deltas) drifted:\n got  %s\n want %s",
				k, n, got, want)
		}
	}
}

// TestJournalAppendFailurePoisons: after a failed append or sync, every
// later call returns the same error — the owner must stop acknowledging
// deltas rather than let the journal and the live session diverge.
func TestJournalAppendFailurePoisons(t *testing.T) {
	tr := journalTrace()
	path := filepath.Join(t.TempDir(), "s.journal")
	// Fault the first delta append's write (the create record's write is
	// op 1; its sync op 2; dir sync op 3; delta write is the 2nd OpWrite).
	inj := faultfs.NewInjector(faultfs.OS, faultfs.Fault{Op: faultfs.OpWrite, N: 2, Mode: faultfs.Fail})
	j, err := CreateJournal(inj, path, Options{Solver: "greedy", Core: core.Options{Seed: 3}}, tr.Instance, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDelta(tr.Deltas[0], "idem-0"); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("faulted append error %v, want ErrInjected", err)
	}
	if err := j.AppendDelta(tr.Deltas[1], "idem-1"); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append after poison error %v, want the original ErrInjected", err)
	}
	if err := j.Sync(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("sync after poison error %v, want the original ErrInjected", err)
	}
}
