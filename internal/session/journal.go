package session

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"sectorpack/internal/core"
	"sectorpack/internal/faultfs"
	"sectorpack/internal/model"
)

// The session journal is an append-only write-ahead log of one session's
// life: a create record (solver, core options, base instance) followed by
// one delta record per state-advancing Apply. Replaying the journal through
// session.New + Session.Apply reconstructs the session's warm state — and,
// by the package's determinism contract, a solution bit-identical to a
// from-scratch solve of the materialized instance.
//
// On-disk layout:
//
//	magic "SPJRNL1\n" | u64 version | frame*
//	frame = u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// (all integers little-endian; payloads are JSON journalRecords). A crash
// mid-append leaves a torn final frame: a short header, a short payload, or
// a CRC mismatch. Recovery (ReadJournal) stops at the first bad frame,
// truncates the file back to the last good frame boundary, and returns the
// records before it — the torn suffix is an Apply whose response was never
// durably acknowledged, so dropping it is correct. A bad frame is always
// treated as end-of-log: nothing after it can be trusted, because frame
// boundaries downstream of a corrupt length are guesses.
//
// Durability cadence: the create record is always fsynced (and the journal
// directory synced) before CreateJournal returns — a session must not be
// acknowledged before its journal exists on disk. Delta appends group-commit:
// with syncEvery = n, an fsync is issued once n appends accumulate, so at
// most n-1 acknowledged deltas can be lost to a crash (with the default
// n = 1, none). Sync and Close flush whatever is pending.
const (
	journalMagic   = "SPJRNL1\n"
	journalVersion = 1
	// maxFrameLen rejects absurd frame lengths (a torn length field read as
	// garbage) before any allocation happens.
	maxFrameLen = 64 << 20
)

// journalRecord is the JSON payload of one frame. Kind "create" carries
// Solver/Core/Instance; kind "delta" carries Delta/IdemKey.
type journalRecord struct {
	Kind     string          `json:"kind"`
	Solver   string          `json:"solver,omitempty"`
	Core     *core.Options   `json:"core,omitempty"`
	Instance *model.Instance `json:"instance,omitempty"`
	Delta    *model.Delta    `json:"delta,omitempty"`
	IdemKey  string          `json:"idem_key,omitempty"`
}

// Journal is the append side of one session's WAL. It is not safe for
// concurrent use; the owner must serialize appends the same way it
// serializes Session.Apply (in sectord, both happen under the session
// entry's lock).
type Journal struct {
	fsys      faultfs.FS
	f         faultfs.File
	path      string
	syncEvery int
	pending   int   // appended frames not yet fsynced
	broken    error // first write/sync failure; poisons all later ops
}

func encodeFrame(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode %s record: %w", rec.Kind, err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame, nil
}

// CreateJournal starts a new journal at path (truncating any previous file
// there), writes the create record, and makes both the record and the
// file's directory entry durable before returning. syncEvery <= 1 fsyncs
// every delta append; n > 1 group-commits every n appends.
func CreateJournal(fsys faultfs.FS, path string, opt Options, in *model.Instance, syncEvery int) (*Journal, error) {
	if in == nil {
		return nil, fmt.Errorf("journal: nil instance")
	}
	if opt.Solver == "" {
		opt.Solver = "greedy"
	}
	if syncEvery < 1 {
		syncEvery = 1
	}
	frame, err := encodeFrame(journalRecord{
		Kind:     "create",
		Solver:   opt.Solver,
		Core:     &opt.Core,
		Instance: in,
	})
	if err != nil {
		return nil, err
	}
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", path, err)
	}
	fail := func(err error) (*Journal, error) {
		// Best-effort cleanup of the half-written file: err already tells
		// the caller the journal was never created, and a leftover file is
		// harmless — recovery rejects it as torn.
		_ = f.Close()
		_ = fsys.Remove(path)
		return nil, err
	}
	var header []byte
	header = append(header, journalMagic...)
	header = binary.LittleEndian.AppendUint64(header, journalVersion)
	if _, err := f.Write(append(header, frame...)); err != nil {
		return fail(fmt.Errorf("journal: write create record: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("journal: sync create record: %w", err))
	}
	// The file's own directory entry must survive a crash too, or recovery
	// will never see the journal.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fail(fmt.Errorf("journal: sync journal directory: %w", err))
	}
	return &Journal{fsys: fsys, f: f, path: path, syncEvery: syncEvery}, nil
}

// OpenAppend reopens an existing journal for further appends, after
// ReadJournal has validated it and truncated any torn tail. It does not
// re-read the file.
func OpenAppend(fsys faultfs.FS, path string, syncEvery int) (*Journal, error) {
	if syncEvery < 1 {
		syncEvery = 1
	}
	// The reopened handle writes nothing here; each later AppendDelta syncs
	// on the group-commit cadence, and Sync/Close flush the window.
	//sectorlint:ignore fsyncorder append handle reopened after recovery; group commit fsyncs in AppendDelta/Sync
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: reopen %s: %w", path, err)
	}
	return &Journal{fsys: fsys, f: f, path: path, syncEvery: syncEvery}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// AppendDelta journals one state-advancing delta. The caller must append
// every delta that advanced the session's instance — including deltas whose
// re-solve failed (Session.Apply installs the new instance before solving)
// — or replay will diverge from the live session. A write or sync failure
// poisons the journal: every later call returns the same error, and the
// owner must stop acknowledging deltas for this session.
func (j *Journal) AppendDelta(d model.Delta, idemKey string) error {
	if j.broken != nil {
		return j.broken
	}
	frame, err := encodeFrame(journalRecord{Kind: "delta", Delta: &d, IdemKey: idemKey})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		j.broken = fmt.Errorf("journal: append delta: %w", err)
		return j.broken
	}
	j.pending++
	if j.pending >= j.syncEvery {
		return j.Sync()
	}
	return nil
}

// Sync flushes any appends the group-commit window is still holding.
func (j *Journal) Sync() error {
	if j.broken != nil {
		return j.broken
	}
	if j.pending == 0 {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.broken = fmt.Errorf("journal: sync: %w", err)
		return j.broken
	}
	j.pending = 0
	return nil
}

// Close flushes pending appends and closes the file. The journal stays on
// disk; Remove deletes it.
func (j *Journal) Close() error {
	serr := j.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Remove closes the journal (without flushing — the session is being
// discarded) and deletes the file. The removal error is the one that
// matters: a close failure on a file about to be unlinked is moot.
func (j *Journal) Remove() error {
	_ = j.f.Close()
	return j.fsys.Remove(j.path)
}

// DeltaRecord is one replayed delta plus the idempotency key it was
// journaled with.
type DeltaRecord struct {
	Delta   model.Delta
	IdemKey string
}

// Recovered is a journal read back from disk: everything needed to rebuild
// the session by replay, plus what recovery had to discard.
type Recovered struct {
	Solver   string
	Core     core.Options
	Instance *model.Instance
	Deltas   []DeltaRecord
	// TruncatedBytes is how many bytes of torn tail ReadJournal cut off
	// (zero for a cleanly closed journal).
	TruncatedBytes int64
}

// LastIdemKey returns the idempotency key of the final journaled delta, or
// "" when no delta carried one.
func (r *Recovered) LastIdemKey() string {
	if len(r.Deltas) == 0 {
		return ""
	}
	return r.Deltas[len(r.Deltas)-1].IdemKey
}

// ReadJournal reads a session journal, truncating any torn tail in place
// (which is why it opens read-write). The header and create record must be
// intact — without them there is no session to rebuild and the error is
// fatal for this journal. Past that, the first bad frame ends the log:
// everything before it is returned, everything from it on is cut off and
// counted in TruncatedBytes.
func ReadJournal(fsys faultfs.FS, path string) (*Recovered, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	headerLen := len(journalMagic) + 8
	if len(raw) < headerLen || string(raw[:len(journalMagic)]) != journalMagic {
		return nil, fmt.Errorf("journal: %s: bad or missing header", path)
	}
	if v := binary.LittleEndian.Uint64(raw[len(journalMagic):]); v != journalVersion {
		return nil, fmt.Errorf("journal: %s: version %d (want %d)", path, v, journalVersion)
	}

	rec := &Recovered{}
	off := headerLen
	good := off // end of the last fully valid frame
	first := true
	for off < len(raw) {
		payload, next, ok := readFrame(raw, off)
		if !ok {
			break
		}
		var jr journalRecord
		if err := json.Unmarshal(payload, &jr); err != nil {
			break
		}
		if first {
			if jr.Kind != "create" || jr.Instance == nil || jr.Core == nil {
				return nil, fmt.Errorf("journal: %s: first record is not a valid create record", path)
			}
			rec.Solver, rec.Core, rec.Instance = jr.Solver, *jr.Core, jr.Instance
			first = false
		} else {
			if jr.Kind != "delta" || jr.Delta == nil {
				break
			}
			rec.Deltas = append(rec.Deltas, DeltaRecord{Delta: *jr.Delta, IdemKey: jr.IdemKey})
		}
		off, good = next, next
	}
	if first {
		// The create record itself was torn; there is nothing to recover.
		return nil, fmt.Errorf("journal: %s: create record torn or missing", path)
	}
	if good < len(raw) {
		rec.TruncatedBytes = int64(len(raw) - good)
		if err := f.Truncate(int64(good)); err != nil {
			return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("journal: sync truncated %s: %w", path, err)
		}
	}
	return rec, nil
}

// readFrame parses one frame at off. ok is false for any tear: short
// header, absurd length, short payload, or CRC mismatch.
func readFrame(raw []byte, off int) (payload []byte, next int, ok bool) {
	if off+8 > len(raw) {
		return nil, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(raw[off:]))
	crc := binary.LittleEndian.Uint32(raw[off+4:])
	if plen <= 0 || plen > maxFrameLen || off+8+plen > len(raw) {
		return nil, 0, false
	}
	payload = raw[off+8 : off+8+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, off + 8 + plen, true
}

// Replay rebuilds the session the journal describes: New on the base
// instance, then Apply for every journaled delta, in order. By the
// determinism contract the result is bit-identical to the crashed session's
// state. Any failure aborts the recovery of this session — a half-replayed
// session must not serve.
func (r *Recovered) Replay(ctx context.Context) (*Session, error) {
	s, err := New(ctx, r.Instance, Options{Solver: r.Solver, Core: r.Core})
	if err != nil {
		return nil, fmt.Errorf("journal replay: create: %w", err)
	}
	for k, dr := range r.Deltas {
		if _, err := s.Apply(ctx, dr.Delta); err != nil {
			return nil, fmt.Errorf("journal replay: delta %d/%d: %w", k+1, len(r.Deltas), err)
		}
	}
	return s, nil
}
