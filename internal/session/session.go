// Package session implements long-lived delta-solve sessions for churning
// workloads: a Session wraps one evolving model.Instance plus a warm
// angular.Engine, accepts deltas (customer add/remove/demand-change,
// antenna capacity-change — model.Delta), and re-solves incrementally from
// the warm state instead of from scratch.
//
// Two layers of work survive a delta:
//
//   - Sweep state. angular.Engine.Rebase keeps every per-antenna sweep the
//     delta provably cannot touch — the radial pre-filter from
//     internal/cols decides which, because sweep membership is a pure
//     radial predicate. On localized churn most sweeps survive.
//   - Greedy steps. For the default "greedy" solver (outside the
//     DisjointAngles variant) the session records the per-antenna step
//     trace of the previous solve and replays every prefix step whose
//     inputs are provably unchanged: same antenna in the same position of
//     the capacity order, sweep kept, capacity unchanged, and no customer
//     whose availability may differ ("dirty") radially eligible for the
//     antenna. Re-solved steps mark the symmetric difference of their old
//     and new served sets dirty, so invalidation cascades exactly as far
//     as the churn reaches and no further.
//
// Determinism contract: every registered solver is a deterministic function
// of (instance, Options), and the warm state a session maintains is
// bit-identical to freshly built state (the rebase and cascade differential
// suites enforce both), so a session's answer after any delta is
// bit-identical to a from-scratch solve of the materialized instance. That
// is also why session solves must bypass the fingerprint solve cache:
// fingerprints describe one-shot (instance, options, solver) triples, and a
// session's identity is its delta history — the HTTP layer (cmd/sectord)
// keeps the two strictly apart.
//
// A Session is not safe for concurrent use; callers (the sectord session
// store) must serialize access per session.
package session

import (
	"context"
	"fmt"
	"sort"

	"sectorpack/internal/angular"
	"sectorpack/internal/cols"
	"sectorpack/internal/core"
	"sectorpack/internal/model"
)

// Options configures a session. Every field is consumed by the solve path:
// Solver selects the strategy re-run after each delta, Core is handed to
// that solver verbatim (and its Knapsack options drive the cascade's
// best-window searches).
type Options struct {
	// Solver is the registry name of the solver to run after every delta;
	// empty means "greedy", the solver with the full incremental fast
	// path. "localsearch" re-solves warm (sweeps survive, steps do not);
	// any other registry name is solved from the materialized instance —
	// correct, but with nothing warm to reuse.
	Solver string
	// Core is passed through to the solver. It is pinned for the life of
	// the session: the step-reuse proof needs the previous solve to have
	// used the same options as the next one.
	Core core.Options
}

// Stats counts a session's incremental-reuse behavior; sectord exports the
// store-wide sums as expvars.
type Stats struct {
	Solves        int64 // total solves, including the initial one
	Deltas        int64 // deltas applied
	SweepsKept    int64 // per-antenna sweeps that survived a Rebase
	SweepsDropped int64 // sweeps invalidated (or never built) at a Rebase
	StepsReused   int64 // greedy steps replayed from the previous trace
	StepsResolved int64 // greedy steps re-solved against the engine
}

// stepRec is one recorded greedy step: antenna processed (in capacity
// order), the window it chose, and the customers it served (instance
// indices at the time of the solve; empty means the step served nobody and
// left the orientation untouched).
type stepRec struct {
	antenna   int
	alpha     float64
	profit    int64
	customers []int32
}

// reuseInfo is what one delta changed, in the form the cascade consumes.
type reuseInfo struct {
	kept       []bool // sweep j survived the rebase
	capChanged []bool // antenna j's capacity was changed by the delta
	removed    []int  // sorted pre-delta ids of removed customers
}

// Session is a long-lived solve session. Create with New, advance with
// Apply.
type Session struct {
	opt Options
	cur *model.Instance
	eng *angular.Engine
	sol model.Solution

	trace   []stepRec // greedy step trace of the last committed solve
	traceOK bool      // trace matches (cur, opt); false after errors or non-cascade solves

	stats Stats
}

// New starts a session on a copy of the instance (the caller's value is
// never touched), prewarms the engine, and solves once. The returned
// session holds that initial solution (Solution()).
func New(ctx context.Context, in *model.Instance, opt Options) (*Session, error) {
	if in == nil {
		return nil, fmt.Errorf("session: nil instance")
	}
	if opt.Solver == "" {
		opt.Solver = "greedy"
	}
	if _, err := core.Get(opt.Solver); err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	cur := in.Clone().Normalize()
	if err := cur.Validate(); err != nil {
		return nil, fmt.Errorf("session: invalid instance: %w", err)
	}
	s := &Session{opt: opt, cur: cur, eng: angular.NewEngine(cur)}
	if err := s.eng.Prewarm(ctx); err != nil {
		return nil, err
	}
	sol, err := s.solve(ctx, nil, nil)
	if err != nil {
		return nil, err
	}
	s.sol = sol
	return s, nil
}

// Apply applies the delta and re-solves incrementally, returning the new
// solution. An invalid delta leaves the session untouched. A failed solve
// (cancellation, solver error) leaves the session on the new instance with
// its warm sweeps, but drops the step trace — the next Apply re-solves
// every step rather than trusting stale state.
func (s *Session) Apply(ctx context.Context, d model.Delta) (model.Solution, error) {
	next, err := model.ApplyDelta(s.cur, d)
	if err != nil {
		return model.Solution{}, err
	}
	kept := s.eng.Rebase(next, d)
	s.cur = next
	s.stats.Deltas++
	for _, k := range kept {
		if k {
			s.stats.SweepsKept++
		} else {
			s.stats.SweepsDropped++
		}
	}
	var ru *reuseInfo
	var prev []stepRec
	if s.traceOK {
		ru = &reuseInfo{
			kept:       kept,
			capChanged: make([]bool, next.M()),
			removed:    append([]int(nil), d.Remove...),
		}
		for _, ch := range d.SetCapacity {
			ru.capChanged[ch.Antenna] = true
		}
		sort.Ints(ru.removed)
		prev = s.trace
	}
	s.traceOK = false
	sol, err := s.solve(ctx, prev, ru)
	if err != nil {
		return model.Solution{}, err
	}
	s.sol = sol
	return sol, nil
}

// Solution returns the last committed solution.
func (s *Session) Solution() model.Solution { return s.sol }

// Instance returns the current materialized instance. It is the session's
// working copy — callers must treat it as read-only (clone before
// mutating).
func (s *Session) Instance() *model.Instance { return s.cur }

// Stats returns a snapshot of the session's reuse counters.
func (s *Session) Stats() Stats { return s.stats }

// solve dispatches one re-solve. prev/ru feed the greedy cascade and are
// nil for fresh solves and non-cascade solvers.
func (s *Session) solve(ctx context.Context, prev []stepRec, ru *reuseInfo) (model.Solution, error) {
	s.stats.Solves++
	switch {
	case s.opt.Solver == "greedy" && s.cur.Variant != model.DisjointAngles:
		// The full incremental path. Safe-wrapped like every registry
		// solve, so a panic comes back as a typed error instead of killing
		// the daemon's request goroutine.
		run := core.Safe("greedy", func(ctx context.Context, in *model.Instance, _ core.Options) (model.Solution, error) {
			return s.cascade(ctx, prev, ru)
		})
		return run(ctx, s.cur, s.opt.Core)
	case s.opt.Solver == "greedy":
		// DisjointAngles couples every step to all previously placed
		// sectors, so steps cannot be replayed independently; the warm
		// sweeps still carry the solve.
		run := core.Safe("greedy", func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
			return core.SolveGreedyWarm(ctx, in, opt, s.eng)
		})
		return run(ctx, s.cur, s.opt.Core)
	case s.opt.Solver == "localsearch":
		run := core.Safe("localsearch", func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
			return core.SolveLocalSearchWarm(ctx, in, opt, s.eng)
		})
		return run(ctx, s.cur, s.opt.Core)
	default:
		fn, err := core.Get(s.opt.Solver)
		if err != nil {
			return model.Solution{}, err
		}
		return fn(ctx, s.cur, s.opt.Core)
	}
}

// cascade is the incremental greedy: the same successive best-window loop
// as core.SolveGreedy (same capacity order, same windows, same folds — the
// differential suite pins bit-identity), except that steps whose inputs
// provably match the previous solve replay from the trace instead of
// re-running their candidate evaluation.
func (s *Session) cascade(ctx context.Context, prev []stepRec, ru *reuseInfo) (model.Solution, error) {
	in := s.cur
	n, m := in.N(), in.M()
	as := model.NewAssignment(n, m)
	sol := model.Solution{Algorithm: "greedy", Assignment: as}

	order := make([]int, m)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Antennas[order[a]].Capacity > in.Antennas[order[b]].Capacity
	})

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	trace := make([]stepRec, 0, m)
	var dirty dirtySet
	// aligned: the prefix of the new capacity order processed so far
	// matches the previous trace antenna-for-antenna. Once it breaks, no
	// later step may replay (its old active-state context is gone).
	aligned := ru != nil && prev != nil

	for p, j := range order {
		if err := ctx.Err(); err != nil {
			return model.Solution{}, err
		}
		if aligned && (p >= len(prev) || prev[p].antenna != j) {
			aligned = false
		}
		if aligned && ru.kept[j] && !ru.capChanged[j] &&
			!dirty.anyEligible(in, in.Antennas[j]) {
			if rec, ok := replay(prev[p], ru.removed, n, active); ok {
				if len(rec.customers) > 0 {
					as.Orientation[j] = rec.alpha
					for _, i := range rec.customers {
						as.Owner[i] = j
						active[i] = false
					}
					sol.Profit += rec.profit
				}
				trace = append(trace, rec)
				s.stats.StepsReused++
				continue
			}
		}
		win, err := s.eng.BestWindow(ctx, j, active, s.opt.Core.Knapsack)
		if err != nil {
			return model.Solution{}, err
		}
		rec := stepRec{antenna: j, alpha: win.Alpha}
		if len(win.Customers) > 0 {
			rec.profit = win.Profit
			rec.customers = make([]int32, len(win.Customers))
			as.Orientation[j] = win.Alpha
			for t, i := range win.Customers {
				rec.customers[t] = int32(i)
				as.Owner[i] = j
				active[i] = false
			}
			sol.Profit += win.Profit
		}
		if aligned {
			// The old step served a (possibly different) set; customers in
			// exactly one of the two sets have diverging availability from
			// here on.
			dirty.addSymDiff(remapSurvivors(prev[p].customers, ru.removed), rec.customers)
		}
		trace = append(trace, rec)
		s.stats.StepsResolved++
	}
	if !s.opt.Core.SkipBound {
		sol.UpperBound = core.UpperBound(in)
	}
	s.trace = trace
	s.traceOK = true
	return sol, nil
}

// replay remaps one recorded step onto the post-delta customer numbering.
// The reuse conditions guarantee none of its customers were removed or
// re-priced and all are still active; ok == false reports a violation (a
// bug elsewhere would have to cause it), in which case the caller re-solves
// the step — degrading to correctness instead of corrupting the
// assignment.
func replay(old stepRec, removed []int, n int, active []bool) (stepRec, bool) {
	rec := stepRec{antenna: old.antenna, alpha: old.alpha, profit: old.profit}
	if len(old.customers) == 0 {
		return rec, true
	}
	rec.customers = make([]int32, len(old.customers))
	for t, c := range old.customers {
		k := sort.SearchInts(removed, int(c))
		if k < len(removed) && removed[k] == int(c) {
			return stepRec{}, false // served customer was removed: not reusable
		}
		nc := int(c) - k
		if nc < 0 || nc >= n || !active[nc] {
			return stepRec{}, false
		}
		rec.customers[t] = int32(nc)
	}
	return rec, true
}

// remapSurvivors maps pre-delta customer ids onto the post-delta numbering,
// dropping removed ones (a removed customer exists for no downstream step,
// so it cannot carry dirtiness).
func remapSurvivors(ids []int32, removed []int) []int32 {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int32, 0, len(ids))
	for _, c := range ids {
		k := sort.SearchInts(removed, int(c))
		if k < len(removed) && removed[k] == int(c) {
			continue
		}
		out = append(out, c-int32(k))
	}
	return out
}

// dirtySet tracks customers whose availability may differ from the previous
// solve. Membership is deduplicated so repeated symmetric differences stay
// linear.
type dirtySet struct {
	ids []int32
	in  map[int32]bool
}

func (d *dirtySet) add(i int32) {
	if d.in == nil {
		d.in = make(map[int32]bool)
	}
	if !d.in[i] {
		d.in[i] = true
		d.ids = append(d.ids, i)
	}
}

// addSymDiff adds every customer in exactly one of the two sets.
func (d *dirtySet) addSymDiff(old, new []int32) {
	inOld := make(map[int32]bool, len(old))
	for _, i := range old {
		inOld[i] = true
	}
	for _, i := range new {
		if inOld[i] {
			delete(inOld, i)
		} else {
			d.add(i)
		}
	}
	for i := range inOld {
		d.add(i)
	}
}

// anyEligible reports whether any dirty customer is radially eligible for
// the antenna — the cols pre-filter predicate, the same membership test
// sweeps are built from. If none is, the antenna's view of the active set
// is unchanged and its recorded step may replay.
func (d *dirtySet) anyEligible(in *model.Instance, a model.Antenna) bool {
	for _, i := range d.ids {
		if cols.InRadialRange(a, in.Customers[i].R) {
			return true
		}
	}
	return false
}
