package session

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/faultfs"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// deltaFromBytes decodes a fuzz payload into a delta against an n-customer,
// m-antenna instance: each 4-byte chunk becomes one operation. Duplicate
// targets within an operation list are skipped (Delta.Validate rejects
// them; the fuzzer should spend its budget past the validator, not on it).
func deltaFromBytes(data []byte, n, m int) model.Delta {
	var d model.Delta
	usedC := map[int]bool{}
	usedR := map[int]bool{}
	usedA := map[int]bool{}
	for ; len(data) >= 4; data = data[4:] {
		op, b1, b2, b3 := data[0], int(data[1]), int(data[2]), int(data[3])
		switch op % 4 {
		case 0:
			if n == 0 {
				continue
			}
			id := b1 % n
			if !usedR[id] {
				usedR[id] = true
				d.Remove = append(d.Remove, id)
			}
		case 1:
			d.Add = append(d.Add, model.Customer{
				Theta:  float64(b1) / 256 * 2 * math.Pi,
				R:      float64(b2) / 256 * 10,
				Demand: 1 + int64(b3%7),
			})
		case 2:
			if n == 0 {
				continue
			}
			id := b1 % n
			if !usedC[id] {
				usedC[id] = true
				d.SetDemand = append(d.SetDemand, model.DemandChange{
					Customer: id,
					Demand:   1 + int64(b2%9),
					Profit:   int64(b3 % 17), // 0 = default-to-demand path
				})
			}
		case 3:
			if m == 0 {
				continue
			}
			id := b1 % m
			if !usedA[id] {
				usedA[id] = true
				d.SetCapacity = append(d.SetCapacity, model.CapacityChange{
					Antenna:  id,
					Capacity: int64(b2)*4 + int64(b3),
				})
			}
		}
	}
	return d
}

// FuzzApplyDelta drives the apply/materialize agreement end to end: the
// fuzz payload is split into two deltas applied in sequence to a session,
// and after each one (a) the session's instance must equal the
// independently materialized one byte for byte, and (b) the session's
// incremental answer must be bit-identical to a from-scratch greedy solve
// of that materialization — the same contract the churn differential suite
// checks on generated traces, here under adversarial deltas (including
// ones that churn a customer the previous delta just renumbered).
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 0, 0})
	f.Add([]byte{1, 100, 200, 3, 2, 5, 4, 0})
	f.Add([]byte{3, 1, 9, 9, 0, 0, 0, 0, 1, 50, 50, 2})
	f.Add([]byte{2, 7, 3, 0, 0, 7, 0, 0}) // re-price and remove the same customer
	base := gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 17, N: 24, M: 3, Bands: 3, Tightness: 2, ProfitSpread: 0.3})
	solver, err := core.Get("greedy")
	if err != nil {
		f.Fatal(err)
	}
	opt := core.Options{Seed: 1, SkipBound: true}
	f.Fuzz(func(t *testing.T, data []byte) {
		half := len(data) / 2
		s, err := New(context.Background(), base, Options{Core: opt})
		if err != nil {
			t.Fatal(err)
		}
		cur := base.Clone().Normalize()
		for step, payload := range [][]byte{data[:half], data[half:]} {
			d := deltaFromBytes(payload, cur.N(), cur.M())
			mat, merr := model.ApplyDelta(cur, d)
			sol, aerr := s.Apply(context.Background(), d)
			if (merr == nil) != (aerr == nil) {
				t.Fatalf("step %d: materialize err %v vs apply err %v", step, merr, aerr)
			}
			if merr != nil {
				continue // both rejected; session state untouched by contract
			}
			cur = mat
			if got, want := instanceJSON(t, s.Instance()), instanceJSON(t, mat); got != want {
				t.Fatalf("step %d: session instance diverged from materialization", step)
			}
			want, err := solver(context.Background(), mat, opt)
			if err != nil {
				t.Fatalf("step %d: from-scratch solve: %v", step, err)
			}
			if got, w := solutionString(sol), solutionString(want); got != w {
				t.Fatalf("step %d: incremental answer drifted:\n got  %s\n want %s", step, got, w)
			}
		}
	})
}

// FuzzJournalReplay drives the crash-recovery contract under adversarial
// delta traces AND adversarial tears at once: the fuzz payload becomes a
// sequence of deltas journaled as they are applied, the journal file is cut
// at a fuzz-chosen byte offset, and recovery of the cut file must yield an
// exact prefix of the applied deltas whose replayed session is bit-identical
// — instance and solution — to independently materializing and solving that
// prefix from scratch. A cut deep enough to tear the create record must be
// rejected outright, never half-recovered.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0, 3, 0, 0, 1, 100, 200, 3}, uint16(9999))
	f.Add([]byte{3, 1, 9, 9, 2, 5, 4, 0}, uint16(17))
	f.Add([]byte{1, 50, 50, 2, 0, 0, 0, 0}, uint16(300))
	base := gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 19, N: 18, M: 3, Bands: 3, Tightness: 2, ProfitSpread: 0.3})
	solver, err := core.Get("greedy")
	if err != nil {
		f.Fatal(err)
	}
	opt := core.Options{Seed: 1, SkipBound: true}
	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		path := filepath.Join(t.TempDir(), "s.journal")
		j, err := CreateJournal(faultfs.OS, path, Options{Core: opt}, base, 1)
		if err != nil {
			t.Fatal(err)
		}
		cur := base.Clone().Normalize()
		var applied []model.Delta
		half := len(data) / 2
		for _, payload := range [][]byte{data[:half], data[half:]} {
			d := deltaFromBytes(payload, cur.N(), cur.M())
			next, err := model.ApplyDelta(cur, d)
			if err != nil {
				continue // rejected deltas never advance state, so never journal
			}
			cur = next
			if err := j.AppendDelta(d, ""); err != nil {
				t.Fatal(err)
			}
			applied = append(applied, d)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c := int(cut) % (len(raw) + 1)
		if err := os.WriteFile(path, raw[:c], 0o644); err != nil {
			t.Fatal(err)
		}

		rec, err := ReadJournal(faultfs.OS, path)
		if err != nil {
			return // create record torn: the session cleanly does not exist
		}
		n := len(rec.Deltas)
		if n > len(applied) {
			t.Fatalf("cut %d: recovered %d deltas, only %d were journaled", c, n, len(applied))
		}
		s, err := rec.Replay(context.Background())
		if err != nil {
			t.Fatalf("cut %d: replay: %v", c, err)
		}
		mat := base.Clone().Normalize()
		for i := 0; i < n; i++ {
			next, err := model.ApplyDelta(mat, applied[i])
			if err != nil {
				t.Fatalf("cut %d: re-materialize delta %d: %v", c, i, err)
			}
			mat = next
		}
		if got, want := instanceJSON(t, s.Instance()), instanceJSON(t, mat); got != want {
			t.Fatalf("cut %d: recovered instance is not the %d-delta prefix materialization", c, n)
		}
		want, err := solver(context.Background(), mat, opt)
		if err != nil {
			t.Fatalf("cut %d: from-scratch solve: %v", c, err)
		}
		if got, w := solutionString(s.Solution()), solutionString(want); got != w {
			t.Fatalf("cut %d: recovered solution drifted:\n got  %s\n want %s", c, got, w)
		}
	})
}
