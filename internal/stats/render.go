package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table with a title, used by the
// experiment harness to print paper-style result tables.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	Caption string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render produces the aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first). Cells are
// quoted when they contain commas or quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// AsciiSeries renders an (x, y) series as a bar chart with one row per
// point — the harness's stand-in for the paper's figures. Width is the bar
// budget in characters.
func AsciiSeries(title string, xs []float64, ys []float64, xLabel, yLabel string, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(xs) == 0 || len(xs) != len(ys) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if width <= 0 {
		width = 50
	}
	maxY := ys[0]
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	fmt.Fprintf(&b, "%10s  %-*s %s\n", xLabel, width, yLabel, "")
	for i := range xs {
		bars := 0
		if maxY > 0 {
			bars = int(ys[i] / maxY * float64(width))
		}
		fmt.Fprintf(&b, "%10.3g  %-*s %.4g\n", xs[i], width, strings.Repeat("█", bars), ys[i])
	}
	return b.String()
}
