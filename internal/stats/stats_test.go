package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	//sectorlint:ignore floateq small-integer samples summarize to exact small integers
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	//sectorlint:ignore floateq small-integer samples summarize to exact small integers
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v, %v", s.P25, s.P75)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty sample should give zero summary")
	}
	s := Summarize([]float64{7})
	//sectorlint:ignore floateq a single-sample summary reproduces the sample exactly
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	//sectorlint:ignore floateq the midpoint of {0, 10} interpolates to exactly 5
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Errorf("median = %v, want 5", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	//sectorlint:ignore floateq q=1 selects the exact max sample
	if q := Quantile(sorted, 1); q != 10 {
		t.Errorf("q1 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestBootstrapCIContainsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() + 10
	}
	lo, hi := BootstrapCI(xs, 0.95, 500, 2)
	if !(lo < 10.2 && hi > 9.8 && lo < hi) {
		t.Errorf("CI [%v, %v] implausible for mean ~10", lo, hi)
	}
	lo, hi = BootstrapCI(nil, 0.95, 100, 1)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty CI should be NaN")
	}
}

func TestLinFitRecoversLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, err := LinFit(xs, ys)
	if err != nil {
		t.Fatalf("LinFit: %v", err)
	}
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("fit = (%v, %v), want (1, 2)", a, b)
	}
	if _, _, err := LinFit([]float64{1}, []float64{2}); err == nil {
		t.Error("short input must error")
	}
	if _, _, err := LinFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x must error")
	}
}

func TestLogLogSlope(t *testing.T) {
	xs := []float64{10, 100, 1000}
	ys := make([]float64, 3)
	for i, x := range xs {
		ys[i] = 5 * x * x // exponent 2
	}
	k, err := LogLogSlope(xs, ys)
	if err != nil {
		t.Fatalf("LogLogSlope: %v", err)
	}
	if math.Abs(k-2) > 1e-9 {
		t.Errorf("slope = %v, want 2", k)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", g)
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("invalid samples should give NaN")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("T1: demo", "alg", "ratio")
	tb.AddRow("greedy", 0.93)
	tb.AddRow("exact", 1.0)
	tb.Caption = "caption"
	out := tb.Render()
	for _, want := range []string{"T1: demo", "alg", "greedy", "0.930", "1.000", "caption", "---"} {
		if !contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestAsciiSeries(t *testing.T) {
	out := AsciiSeries("F1: demo", []float64{1, 2}, []float64{5, 10}, "x", "y", 20)
	if !contains(out, "F1: demo") || !contains(out, "█") {
		t.Errorf("series render:\n%s", out)
	}
	out = AsciiSeries("empty", nil, nil, "x", "y", 20)
	if !contains(out, "no data") {
		t.Errorf("empty series render:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("plain", 1.5)
	tb.AddRow(`comma,and"quote`, 2.0)
	csv := tb.CSV()
	if !contains(csv, "a,b\n") {
		t.Errorf("missing header: %q", csv)
	}
	if !contains(csv, "plain,1.500") {
		t.Errorf("missing plain row: %q", csv)
	}
	if !contains(csv, `"comma,and""quote"`) {
		t.Errorf("quoting broken: %q", csv)
	}
}
