// Package stats provides the small statistical toolkit the experiment
// harness needs: summaries (mean, quantiles, min/max, stddev), bootstrap
// confidence intervals, and linear regression on log-log data for
// estimating empirical complexity exponents.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Summary condenses a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary of the sample; an empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.P25 = Quantile(sorted, 0.25)
	s.Median = Quantile(sorted, 0.5)
	s.P75 = Quantile(sorted, 0.75)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted sample
// using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BootstrapCI returns a two-sided percentile bootstrap confidence interval
// for the mean at the given level (e.g. 0.95), using resamples resampling
// rounds driven by the seed.
func BootstrapCI(xs []float64, level float64, resamples int, seed int64) (lo, hi float64) {
	if len(xs) == 0 || resamples <= 0 {
		return math.NaN(), math.NaN()
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := range means {
		var sum float64
		for k := 0; k < len(xs); k++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// LinFit fits y = a + b·x by least squares and returns (a, b). NaN inputs
// poison the fit; callers filter first.
func LinFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: LinFit needs two equal-length samples of size >= 2, got %d and %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: LinFit degenerate x sample")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, nil
}

// LogLogSlope estimates the exponent k of y ≈ c·x^k from positive samples
// by regressing log y on log x — the empirical complexity estimator used
// by experiment E3.
func LogLogSlope(xs, ys []float64) (float64, error) {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	_, slope, err := LinFit(lx, ly)
	return slope, err
}

// GeoMean returns the geometric mean of positive samples (used for ratio
// aggregation, where arithmetic means overweight easy instances).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
