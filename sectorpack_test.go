package sectorpack_test

import (
	"context"
	"testing"
	"time"

	"sectorpack"
)

// TestPublicAPIEndToEnd exercises the façade the way the README shows.
func TestPublicAPIEndToEnd(t *testing.T) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Hotspot, Variant: sectorpack.Sectors,
		Seed: 3, N: 60, M: 3,
	})
	if err := in.Validate(); err != nil {
		t.Fatalf("generated instance invalid: %v", err)
	}
	sol, err := sectorpack.SolveGreedy(context.Background(), in, sectorpack.Options{})
	if err != nil {
		t.Fatalf("SolveGreedy: %v", err)
	}
	if err := sol.Assignment.Check(in); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if sol.Profit <= 0 {
		t.Fatal("hotspot instance should serve someone")
	}
	if b := sectorpack.UpperBound(in); float64(sol.Profit) > b+1e-6 {
		t.Fatalf("profit %d above bound %v", sol.Profit, b)
	}
}

func TestPublicSolveDispatch(t *testing.T) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Angles,
		Seed: 4, N: 20, M: 2,
	})
	names := sectorpack.SolverNames()
	if len(names) < 5 {
		t.Fatalf("SolverNames = %v", names)
	}
	sol, err := sectorpack.Solve(context.Background(), "localsearch", in, sectorpack.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := sol.Assignment.Check(in); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if _, err := sectorpack.Solve(context.Background(), "bogus", in, sectorpack.Options{}); err == nil {
		t.Error("unknown solver must error")
	}
}

// TestPublicSolveBatch: the façade batch call solves every item and each
// result matches the corresponding single solve exactly.
func TestPublicSolveBatch(t *testing.T) {
	ins := make([]*sectorpack.Instance, 4)
	for k := range ins {
		ins[k] = sectorpack.MustGenerate(sectorpack.GenConfig{
			Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
			Seed: int64(30 + k), N: 15, M: 2,
		})
	}
	results, err := sectorpack.SolveBatch(context.Background(), "greedy", ins, sectorpack.Options{Seed: 1})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(results) != len(ins) {
		t.Fatalf("got %d results for %d instances", len(results), len(ins))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		single, err := sectorpack.Solve(context.Background(), "greedy", ins[i], sectorpack.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.Solution.Profit != single.Profit {
			t.Errorf("item %d: batch profit %d != single profit %d", i, r.Solution.Profit, single.Profit)
		}
		if err := r.Solution.Assignment.Check(ins[i]); err != nil {
			t.Errorf("item %d infeasible: %v", i, err)
		}
	}
	if _, err := sectorpack.SolveBatch(context.Background(), "bogus", ins, sectorpack.Options{}); err == nil {
		t.Error("unknown solver must error")
	}
}

func TestPublicSolveHedged(t *testing.T) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 6, N: 20, M: 2,
	})
	// Healthy primary: bit-identical to the direct dispatch.
	direct, err := sectorpack.Solve(context.Background(), "greedy", in, sectorpack.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	hedged, err := sectorpack.SolveHedged(context.Background(), "greedy", in, sectorpack.Options{Seed: 1})
	if err != nil {
		t.Fatalf("SolveHedged: %v", err)
	}
	if hedged.Degraded || hedged.SolverUsed != "greedy" {
		t.Fatalf("healthy hedge mislabelled: degraded=%v used=%q", hedged.Degraded, hedged.SolverUsed)
	}
	if hedged.Profit != direct.Profit {
		t.Fatalf("hedged profit %d != direct %d", hedged.Profit, direct.Profit)
	}
	// Expired deadline: the detached greedy fallback still answers.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	deg, err := sectorpack.SolveHedged(ctx, "exact", in, sectorpack.Options{Seed: 1})
	if err != nil {
		t.Fatalf("SolveHedged degraded: %v", err)
	}
	if !deg.Degraded || deg.SolverUsed != "greedy" {
		t.Fatalf("degraded hedge mislabelled: degraded=%v used=%q", deg.Degraded, deg.SolverUsed)
	}
	if err := deg.Assignment.Check(in); err != nil {
		t.Fatalf("degraded solution infeasible: %v", err)
	}
	if _, err := sectorpack.SolveHedged(context.Background(), "bogus", in, sectorpack.Options{}); err == nil {
		t.Error("unknown solver must error")
	}
}

func TestPublicVariantsRoundTrip(t *testing.T) {
	for _, v := range []sectorpack.Variant{sectorpack.Sectors, sectorpack.Angles, sectorpack.DisjointAngles} {
		in := sectorpack.MustGenerate(sectorpack.GenConfig{
			Family: sectorpack.Uniform, Variant: v, Seed: 5, N: 12, M: 2, Rho: 1.0,
		})
		if in.Variant != v {
			t.Errorf("variant %v not stamped", v)
		}
		sol, err := sectorpack.SolveGreedy(context.Background(), in, sectorpack.Options{})
		if err != nil {
			t.Fatalf("greedy on %v: %v", v, err)
		}
		if err := sol.Assignment.Check(in); err != nil {
			t.Fatalf("greedy on %v infeasible: %v", v, err)
		}
	}
}
