// Quickstart: build a tiny instance by hand, solve it with two algorithms,
// and inspect the assignment. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"sectorpack"
)

func main() {
	// Eight customers around a base station; a crowd sits near θ ≈ 0.
	in := &sectorpack.Instance{
		Name:    "quickstart",
		Variant: sectorpack.Sectors,
		Customers: []sectorpack.Customer{
			{Theta: 0.10, R: 2.0, Demand: 4},
			{Theta: 0.35, R: 3.5, Demand: 6},
			{Theta: 0.60, R: 1.0, Demand: 3},
			{Theta: 1.20, R: 5.0, Demand: 5},
			{Theta: 2.50, R: 2.5, Demand: 7},
			{Theta: 3.90, R: 4.0, Demand: 2},
			{Theta: 5.10, R: 1.5, Demand: 4},
			{Theta: 5.90, R: 6.5, Demand: 3},
		},
		// Two antennas: a wide short-range panel and a narrow long-range one.
		Antennas: []sectorpack.Antenna{
			{Rho: math.Pi / 2, Range: 4.0, Capacity: 12},
			{Rho: math.Pi / 4, Range: 7.0, Capacity: 8},
		},
	}
	in.Normalize()
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}

	greedy, err := sectorpack.SolveGreedy(context.Background(), in, sectorpack.Options{})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := sectorpack.SolveExact(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("total demand %d against capacity %d (tightness %.2f)\n\n",
		in.TotalDemand(), in.TotalCapacity(), in.Tightness())
	for _, sol := range []sectorpack.Solution{greedy, exact} {
		fmt.Printf("%-8s profit %2d  served %d/%d customers\n",
			sol.Algorithm, sol.Profit, sol.Assignment.ServedCount(), in.N())
		for j := range in.Antennas {
			fmt.Printf("  antenna %d at α=%.2f rad serves:", j, sol.Assignment.Orientation[j])
			for i, owner := range sol.Assignment.Owner {
				if owner == j {
					fmt.Printf(" c%d", i)
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Printf("greedy achieved %.1f%% of the optimum\n",
		100*float64(greedy.Profit)/float64(exact.Profit))
}
