// Multi-tower deployment: three base stations cover a corridor of demand
// (a highway of customers), each tower carrying two directional panels.
// The example plans the whole corridor at once and reports per-tower
// utilization — the multi-station extension of the single-tower model.
// Run with:
//
//	go run ./examples/multitower
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"sectorpack"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	in := &sectorpack.MultiInstance{Name: "highway-corridor"}

	// Three towers along the corridor at x = 0, 40, 80.
	for s := 0; s < 3; s++ {
		st := sectorpack.MultiStation{Pos: sectorpack.XY{X: float64(s) * 40}}
		for j := 0; j < 2; j++ {
			st.Antennas = append(st.Antennas, sectorpack.Antenna{
				Rho: 1.2, Range: 25, Capacity: 40,
			})
		}
		in.Stations = append(in.Stations, st)
	}
	// Customers scattered along the corridor with jitter.
	for i := 0; i < 120; i++ {
		in.Customers = append(in.Customers, sectorpack.MultiCustomer{
			Pos: sectorpack.XY{
				X: rng.Float64() * 80,
				Y: rng.NormFloat64() * 8,
			},
			Demand: 1 + rng.Int63n(4),
		})
	}
	in.Normalize()

	as, profit, err := sectorpack.SolveMultiGreedy(context.Background(), in, sectorpack.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := as.Check(in); err != nil {
		log.Fatalf("plan infeasible: %v", err)
	}

	fmt.Printf("corridor: %d customers, total demand %d\n", in.N(), in.TotalProfit())
	fmt.Printf("plan serves %d (%.1f%%)\n\n", profit, 100*float64(profit)/float64(in.TotalProfit()))
	for s, st := range in.Stations {
		fmt.Printf("tower %d at x=%.0f:\n", s, st.Pos.X)
		for j, a := range st.Antennas {
			var load int64
			count := 0
			for i := range in.Customers {
				if as.OwnerStation[i] == s && as.OwnerAntenna[i] == j {
					load += in.Customers[i].Demand
					count++
				}
			}
			fmt.Printf("  panel %d: aim %6.1f°, load %2d/%2d, %d customers\n",
				j, as.Orientation[s][j]*180/math.Pi, load, a.Capacity, count)
		}
	}
	unserved := 0
	for i := range in.Customers {
		if as.OwnerStation[i] < 0 {
			unserved++
		}
	}
	fmt.Printf("\nunserved: %d customers (mostly mid-corridor gaps — candidates for a fourth tower)\n", unserved)
}
