// Fairness planning: three neighborhoods (angle terciles) share one tower.
// Pure profit maximization abandons the sparsest neighborhood entirely;
// the max-min fair plan guarantees every neighborhood a service floor and
// reports what that guarantee costs. Run with:
//
//	go run ./examples/fairness
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"sectorpack"
)

func main() {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family:   sectorpack.Hotspot,
		Variant:  sectorpack.Sectors,
		Seed:     31,
		N:        90,
		M:        3,
		Hotspots: 2, // two dense neighborhoods; the third is sparse
	})
	in.Name = "three-neighborhoods"

	classes := make([]int, in.N())
	third := 2 * math.Pi / 3
	for i, c := range in.Customers {
		classes[i] = int(c.Theta / third)
		if classes[i] > 2 {
			classes[i] = 2
		}
	}

	// Profit-first plan (splittable for an apples-to-apples comparison).
	eff, err := sectorpack.SolveSplittable(context.Background(), in, sectorpack.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Fairness-first plan.
	fair, err := sectorpack.SolveFair(context.Background(), in, classes, sectorpack.Options{})
	if err != nil {
		log.Fatal(err)
	}

	classTotal := make([]float64, 3)
	effServed := make([]float64, 3)
	for i, c := range in.Customers {
		classTotal[classes[i]] += float64(c.Profit)
		var got float64
		for j := range eff.Frac[i] {
			got += eff.Frac[i][j]
		}
		effServed[classes[i]] += got * float64(c.Profit)
	}

	fmt.Printf("%s: %d customers in 3 neighborhoods\n\n", in.Name, in.N())
	fmt.Println("neighborhood   profit-first   fairness-first")
	for cls := 0; cls < 3; cls++ {
		effFrac := 0.0
		if classTotal[cls] > 0 {
			effFrac = effServed[cls] / classTotal[cls]
		}
		fmt.Printf("       %d          %5.1f%%          %5.1f%%\n",
			cls, 100*effFrac, 100*fair.ClassFraction[cls])
	}
	fmt.Printf("\ntotal served:     %6.1f          %6.1f  demand units\n", eff.Value, fair.Value)
	fmt.Printf("guaranteed floor: every neighborhood gets ≥ %.1f%% under the fair plan\n",
		100*fair.MinFraction)
}
