// Capacity planning sweep: how many antennas does a hotspot district need?
// The example sweeps the antenna count, solving each configuration in
// parallel, and prints the coverage curve a planner would use to pick the
// knee. Run with:
//
//	go run ./examples/capacity
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"sectorpack"
)

func main() {
	const n = 150
	ms := []int{1, 2, 3, 4, 5, 6, 8}

	type point struct {
		m      int
		served float64
	}
	var (
		mu     sync.Mutex
		points []point
		wg     sync.WaitGroup
	)
	for _, m := range ms {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := sectorpack.MustGenerate(sectorpack.GenConfig{
				Family:  sectorpack.Hotspot,
				Variant: sectorpack.Sectors,
				Seed:    5,
				N:       n,
				M:       m,
			})
			sol, err := sectorpack.SolveLocalSearch(context.Background(), in, sectorpack.Options{Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			points = append(points, point{m: m, served: float64(sol.Profit) / float64(in.TotalProfit())})
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Slice(points, func(a, b int) bool { return points[a].m < points[b].m })

	fmt.Printf("coverage curve for a %d-customer hotspot district:\n\n", n)
	fmt.Println("  antennas  coverage  marginal gain")
	prev := 0.0
	knee := 0
	for _, p := range points {
		gain := p.served - prev
		marker := ""
		if knee == 0 && prev > 0 && gain < 0.05 {
			knee = p.m
			marker = "   <- diminishing returns"
		}
		fmt.Printf("  %8d  %7.1f%%  %+12.1f%%%s\n", p.m, 100*p.served, 100*gain, marker)
		prev = p.served
	}
	if knee > 0 {
		fmt.Printf("\nplanner's pick: %d antennas (first configuration with <5%% marginal gain)\n", knee-1)
	}
}
