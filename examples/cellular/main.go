// Cellular base-station planning: a tower serves a city district with four
// directional panels of different reach and capacity. Customers follow a
// rings pattern (dense blocks at fixed distances); the planner compares the
// full solver stack and reports per-panel utilization. Run with:
//
//	go run ./examples/cellular
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"sectorpack"
)

func main() {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family:    sectorpack.Rings,
		Variant:   sectorpack.Sectors,
		Seed:      2024,
		N:         220,
		M:         4,
		Rho:       math.Pi / 3,
		RhoSpread: 0.25,
		Range:     8,
		Tightness: 1.4,
	})
	in.Name = "cellular-district"

	fmt.Printf("district: %d customers, total demand %d; 4 panels, capacity %d\n\n",
		in.N(), in.TotalDemand(), in.TotalCapacity())
	fmt.Printf("certified upper bound on served demand: %.0f\n\n", sectorpack.UpperBound(in))

	for _, name := range []string{"greedy", "localsearch", "lpround", "unitflow"} {
		if name == "unitflow" {
			// unitflow needs unit demands; skip it in this mixed-demand plan
			continue
		}
		sol, err := sectorpack.Solve(context.Background(), name, in, sectorpack.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s served demand %4d (%.1f%% of city, %.1f%% of bound)\n",
			name, sol.Profit,
			100*float64(sol.Profit)/float64(in.TotalProfit()),
			100*sol.Ratio())
	}

	// Detailed plan from the best heuristic.
	sol, err := sectorpack.SolveLocalSearch(context.Background(), in, sectorpack.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal plan (localsearch):")
	load := sol.Assignment.Load(in)
	for j, a := range in.Antennas {
		fmt.Printf("  panel %d: aim %6.1f°, width %5.1f°, load %3d/%3d (%.0f%% utilized)\n",
			j, sol.Assignment.Orientation[j]*180/math.Pi, a.Rho*180/math.Pi,
			load[j], a.Capacity, 100*float64(load[j])/float64(a.Capacity))
	}
	unserved := in.N() - sol.Assignment.ServedCount()
	fmt.Printf("  unserved customers: %d (candidates for a fifth panel)\n", unserved)
}
