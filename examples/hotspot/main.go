// Event-hotspot coverage with interference-free sectors: a stadium crowd
// concentrates demand in a few angular clusters, and regulations require
// the chosen sectors to be disjoint (no overlapping beams). The example
// contrasts the exact disjoint DP with the greedy heuristic under the
// disjointness constraint. Run with:
//
//	go run ./examples/hotspot
package main

import (
	"context"
	"fmt"
	"log"

	"sectorpack"
)

func main() {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family:   sectorpack.Hotspot,
		Variant:  sectorpack.DisjointAngles,
		Seed:     99,
		N:        18,
		M:        3,
		Rho:      0.9,
		Hotspots: 2,
	})
	in.Name = "stadium-event"

	fmt.Printf("event: %d customers in 2 hotspots, 3 disjoint beams of width ~0.9 rad\n\n", in.N())

	dp, err := sectorpack.SolveDisjointDP(context.Background(), in, sectorpack.Options{})
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := sectorpack.SolveGreedy(context.Background(), in, sectorpack.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for _, sol := range []sectorpack.Solution{dp, greedy} {
		if err := sol.Assignment.Check(in); err != nil {
			log.Fatalf("%s produced an infeasible plan: %v", sol.Algorithm, err)
		}
		fmt.Printf("%-12s served demand %3d/%3d across beams at:",
			sol.Algorithm, sol.Profit, in.TotalDemand())
		for j := range in.Antennas {
			serves := false
			for _, owner := range sol.Assignment.Owner {
				if owner == j {
					serves = true
					break
				}
			}
			if serves {
				fmt.Printf(" %.2f", sol.Assignment.Orientation[j])
			}
		}
		fmt.Println(" rad")
	}
	if greedy.Profit < dp.Profit {
		fmt.Printf("\nthe exact DP beats greedy by %d demand units here — disjointness "+
			"is where greedy pays for its myopia\n", dp.Profit-greedy.Profit)
	} else {
		fmt.Println("\ngreedy matched the exact DP on this instance")
	}
}
