// Benchmarks regenerating every experiment table/figure (BenchmarkE1–E10,
// one per table or figure in EXPERIMENTS.md) plus micro-benchmarks of the
// substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches run the Quick configuration so a full -bench=.
// pass stays in CI time; cmd/sectorbench runs the full-size versions.
package sectorpack_test

import (
	"context"
	"fmt"
	"testing"

	"sectorpack"
	"sectorpack/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 && len(rep.Figures) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

func BenchmarkE1GreedyVsExact(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2ProfitVsBound(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3RuntimeScaling(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4WidthSweep(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5TightnessSweep(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6AntennaClasses(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7DisjointDPExactness(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8UnitFlowExactness(b *testing.B)   { benchExperiment(b, "E8") }
func BenchmarkE9CoverageVsAntennas(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10AdversarialFPTAS(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11CandidateAblation(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12OrderAblation(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13CoveringCompanion(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE14HeuristicShootout(b *testing.B)  { benchExperiment(b, "E14") }
func BenchmarkE15OnlineArrivals(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16BoundTightness(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkE17IntegralityGap(b *testing.B)     { benchExperiment(b, "E17") }
func BenchmarkE18PriceOfFairness(b *testing.B)    { benchExperiment(b, "E18") }

// --- solver micro-benchmarks over the public API ---

func benchSolver(b *testing.B, name string, n, m int) {
	b.Helper()
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 42, N: n, M: m,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := sectorpack.Solve(context.Background(), name, in, sectorpack.Options{Seed: 1, SkipBound: true})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Profit <= 0 {
			b.Fatal("degenerate solve")
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) { benchSolver(b, "greedy", n, 3) })
	}
}

func BenchmarkLocalSearch(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) { benchSolver(b, "localsearch", n, 3) })
	}
}

func BenchmarkLPRound(b *testing.B) {
	for _, n := range []int{30, 90} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) { benchSolver(b, "lpround", n, 3) })
	}
}

func BenchmarkUnitFlow(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			in := sectorpack.MustGenerate(sectorpack.GenConfig{
				Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
				Seed: 42, N: n, M: 3, UnitDemand: true,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sectorpack.SolveUnitFlow(context.Background(), in, sectorpack.Options{SkipBound: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDisjointDP(b *testing.B) {
	for _, n := range []int{10, 20} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			in := sectorpack.MustGenerate(sectorpack.GenConfig{
				Family: sectorpack.Uniform, Variant: sectorpack.DisjointAngles,
				Seed: 42, N: n, M: 3, Rho: 1.2,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sectorpack.SolveDisjointDP(context.Background(), in, sectorpack.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExactSmall(b *testing.B) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 42, N: 10, M: 2,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sectorpack.SolveExact(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpperBound(b *testing.B) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 42, N: 300, M: 4,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sectorpack.UpperBound(in) <= 0 {
			b.Fatal("degenerate bound")
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	for _, fam := range []sectorpack.Family{sectorpack.Uniform, sectorpack.Hotspot, sectorpack.Zipf} {
		b.Run(string(fam), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sectorpack.Generate(sectorpack.GenConfig{
					Family: fam, Variant: sectorpack.Sectors, Seed: int64(i), N: 500, M: 4,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
