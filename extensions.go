package sectorpack

import (
	"context"

	"sectorpack/internal/core"
	"sectorpack/internal/cover"
	"sectorpack/internal/exact"
	"sectorpack/internal/fair"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
	"sectorpack/internal/multistation"
	"sectorpack/internal/online"
	"sectorpack/internal/reduce"
	"sectorpack/internal/viz"
)

// --- covering companion (minimum antennas to serve everyone) ---

type (
	// CoverAntennaType describes the antenna model used for covering.
	CoverAntennaType = cover.AntennaType
	// CoverResult is a covering solution (placements serving everyone).
	CoverResult = cover.Result
	// CoverPlacement is one placed antenna in a covering solution.
	CoverPlacement = cover.Placement
)

// CoverGreedy covers all customers with greedily placed antennas of the
// given type (max-coverage steps; H_n-style guarantee for unit demands).
func CoverGreedy(ctx context.Context, customers []Customer, typ CoverAntennaType) (CoverResult, error) {
	return cover.Greedy(ctx, customers, typ)
}

// CoverExact finds the minimum antenna count by iterative deepening; small
// instances only (see cover.MaxExactCustomers).
func CoverExact(ctx context.Context, customers []Customer, typ CoverAntennaType, maxK int) (CoverResult, error) {
	return cover.Exact(ctx, customers, typ, maxK)
}

// CoverCheck validates a covering solution.
func CoverCheck(customers []Customer, typ CoverAntennaType, r CoverResult) error {
	return cover.Check(customers, typ, r)
}

// --- online arrivals ---

type (
	// OnlinePolicy decides admission for one arriving customer.
	OnlinePolicy = online.Policy
	// OnlineFirstFit admits to the lowest-indexed feasible antenna.
	OnlineFirstFit = online.FirstFit
	// OnlineBestFit admits to the tightest feasible antenna.
	OnlineBestFit = online.BestFit
	// OnlineThreshold rejects low-density customers, then best-fits.
	OnlineThreshold = online.Threshold
)

// OnlineRun plays an arrival sequence through a policy at fixed
// orientations and returns the resulting assignment.
func OnlineRun(in *Instance, orientations []float64, order []int, p OnlinePolicy) (*Assignment, error) {
	return online.Run(in, orientations, order, p)
}

// OrientUniform spreads antenna orientations evenly (no-information
// baseline for online deployment).
func OrientUniform(in *Instance) []float64 { return online.OrientUniform(in) }

// OrientFromSample orients antennas by solving offline greedy on a random
// sample of the customers (a demand forecast).
func OrientFromSample(ctx context.Context, in *Instance, frac float64, seed int64) ([]float64, error) {
	return online.OrientFromSample(ctx, in, frac, seed)
}

// --- multi-station deployments ---

type (
	// XY is a Cartesian point on the plane.
	XY = geom.XY
	// Polar is a polar point around a base station.
	Polar = geom.Polar
	// MultiInstance is a problem with several base stations on the plane.
	MultiInstance = multistation.Instance
	// MultiStation is one base station with its antennas.
	MultiStation = multistation.Station
	// MultiCustomer is a Cartesian demand point.
	MultiCustomer = multistation.Customer
	// MultiAssignment is a multi-station solution.
	MultiAssignment = multistation.Assignment
)

// SolveMultiGreedy runs the successive best-window greedy across every
// (station, antenna) pair of a multi-station instance.
func SolveMultiGreedy(ctx context.Context, in *MultiInstance, opt Options) (*MultiAssignment, int64, error) {
	return multistation.SolveGreedy(ctx, in, opt.Knapsack)
}

// ensure the Options knapsack field stays structurally compatible.
var _ knapsack.Options = Options{}.Knapsack

// --- preprocessing and parallel exact ---

// Reduction is the outcome of instance preprocessing: the shrunken
// instance plus the lift back to the original.
type Reduction = reduce.Result

// Reduce applies the optimum-preserving reductions (drop unreachable and
// zero-profit customers, tighten capacities, GCD-scale demands). Solve the
// Reduced instance, then Lift the assignment back.
func Reduce(in *Instance) (*Reduction, error) { return reduce.Apply(in) }

// SolveExactParallel is SolveExact with the orientation search fanned out
// over a worker pool (workers <= 0 means GOMAXPROCS). Same result, less
// wall clock on multi-antenna instances.
func SolveExactParallel(ctx context.Context, in *Instance, workers int) (Solution, error) {
	return exact.SolveParallel(ctx, in, exact.Limits{}, workers)
}

// --- splittable demands ---

// SplitSolution is a fractional-service solution (splittable demands).
type SplitSolution = core.SplitSolution

// SolveSplittable solves the splittable-demand variant at greedy-chosen
// orientations (exact LP given the orientations).
func SolveSplittable(ctx context.Context, in *Instance, opt Options) (SplitSolution, error) {
	return core.SolveSplittable(ctx, in, opt)
}

// SolveSplittableExact computes the true splittable optimum for small
// instances (candidate-tuple enumeration with an LP per tuple).
func SolveSplittableExact(ctx context.Context, in *Instance) (SplitSolution, error) {
	return core.SolveSplittableExact(ctx, in)
}

// --- fairness across customer classes ---

// FairSolution is a max-min fair fractional plan across customer classes.
type FairSolution = fair.Solution

// SolveFair maximizes the minimum class service fraction, then total
// profit subject to that floor. classes[i] is customer i's class id; nil
// means a single class.
func SolveFair(ctx context.Context, in *Instance, classes []int, opt Options) (FairSolution, error) {
	return fair.Solve(ctx, in, classes, opt)
}

// --- visualization ---

// VizOptions controls RenderASCII.
type VizOptions = viz.Options

// RenderASCII draws the instance (and optional solution) as an ASCII polar
// plot with per-antenna legend.
func RenderASCII(in *Instance, as *Assignment, opt VizOptions) string {
	return viz.Render(in, as, opt)
}

// compile-time checks that the façade types stay aliases of the internals.
var (
	_ = model.Unassigned
)
