package sectorpack_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"sectorpack"
)

func TestCoverFacade(t *testing.T) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 8, N: 10, M: 1, Range: 9,
	})
	typ := sectorpack.CoverAntennaType{Rho: 1.5, Range: 12, Capacity: 1 << 40}
	res, err := sectorpack.CoverGreedy(context.Background(), in.Customers, typ)
	if err != nil {
		t.Fatalf("CoverGreedy: %v", err)
	}
	if err := sectorpack.CoverCheck(in.Customers, typ, res); err != nil {
		t.Fatalf("CoverCheck: %v", err)
	}
	ex, err := sectorpack.CoverExact(context.Background(), in.Customers, typ, 0)
	if err != nil {
		t.Fatalf("CoverExact: %v", err)
	}
	if ex.K() > res.K() {
		t.Fatalf("exact %d > greedy %d", ex.K(), res.K())
	}
}

func TestOnlineFacade(t *testing.T) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Hotspot, Variant: sectorpack.Sectors,
		Seed: 9, N: 40, M: 3,
	})
	orient, err := sectorpack.OrientFromSample(context.Background(), in, 0.4, 2)
	if err != nil {
		t.Fatalf("OrientFromSample: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	as, err := sectorpack.OnlineRun(in, orient, rng.Perm(in.N()), sectorpack.OnlineBestFit{})
	if err != nil {
		t.Fatalf("OnlineRun: %v", err)
	}
	if err := as.Check(in); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	uni := sectorpack.OrientUniform(in)
	if len(uni) != in.M() {
		t.Fatalf("OrientUniform length %d", len(uni))
	}
}

func TestRenderASCIIFacade(t *testing.T) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 10, N: 15, M: 2,
	})
	sol, err := sectorpack.SolveGreedy(context.Background(), in, sectorpack.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := sectorpack.RenderASCII(in, sol.Assignment, sectorpack.VizOptions{Rays: true})
	if !strings.Contains(out, "B") {
		t.Error("render missing base station")
	}
}

func TestReduceFacade(t *testing.T) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 11, N: 30, M: 2, Range: 5,
	})
	r, err := sectorpack.Reduce(in)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	sol, err := sectorpack.SolveGreedy(context.Background(), r.Reduced, sectorpack.Options{SkipBound: true})
	if err != nil {
		t.Fatalf("greedy on reduced: %v", err)
	}
	lifted := r.Lift(sol.Assignment)
	if err := lifted.Check(in); err != nil {
		t.Fatalf("lifted infeasible: %v", err)
	}
}

func TestSolveExactParallelFacade(t *testing.T) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 12, N: 8, M: 2,
	})
	seq, err := sectorpack.SolveExact(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sectorpack.SolveExactParallel(context.Background(), in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Profit != par.Profit {
		t.Fatalf("parallel exact %d != sequential %d", par.Profit, seq.Profit)
	}
}

// TestFacadeWrappersSmoke exercises every remaining façade entry point on
// one small instance so the public API surface stays wired.
func TestFacadeWrappersSmoke(t *testing.T) {
	in := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 13, N: 10, M: 2,
	})
	for name, f := range map[string]func(context.Context, *sectorpack.Instance, sectorpack.Options) (sectorpack.Solution, error){
		"lpround":  sectorpack.SolveLPRound,
		"unitflow": nil, // needs unit demands; handled below
		"auto":     sectorpack.SolveAuto,
	} {
		if f == nil {
			continue
		}
		sol, err := f(context.Background(), in, sectorpack.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sol.Assignment.Check(in); err != nil {
			t.Fatalf("%s infeasible: %v", name, err)
		}
	}
	unit := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 13, N: 10, M: 2, UnitDemand: true,
	})
	if _, err := sectorpack.SolveUnitFlow(context.Background(), unit, sectorpack.Options{}); err != nil {
		t.Fatalf("unitflow: %v", err)
	}
	dis := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.DisjointAngles,
		Seed: 13, N: 8, M: 2, Rho: 1.0,
	})
	if _, err := sectorpack.SolveDisjointDP(context.Background(), dis, sectorpack.Options{}); err != nil {
		t.Fatalf("disjoint-dp: %v", err)
	}
	if _, err := sectorpack.ConfigLPBound(in); err != nil {
		t.Fatalf("ConfigLPBound: %v", err)
	}
	split, err := sectorpack.SolveSplittable(context.Background(), in, sectorpack.Options{})
	if err != nil {
		t.Fatalf("splittable: %v", err)
	}
	if err := split.Check(in); err != nil {
		t.Fatalf("splittable infeasible: %v", err)
	}
	small := sectorpack.MustGenerate(sectorpack.GenConfig{
		Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
		Seed: 14, N: 6, M: 1,
	})
	if _, err := sectorpack.SolveSplittableExact(context.Background(), small); err != nil {
		t.Fatalf("splittable exact: %v", err)
	}
	if _, err := sectorpack.SolveFair(context.Background(), in, nil, sectorpack.Options{}); err != nil {
		t.Fatalf("fair: %v", err)
	}
	multi := &sectorpack.MultiInstance{
		Customers: []sectorpack.MultiCustomer{{Pos: sectorpack.XY{X: 2}, Demand: 1}},
		Stations: []sectorpack.MultiStation{{Antennas: []sectorpack.Antenna{
			{Rho: 1, Range: 5, Capacity: 4},
		}}},
	}
	multi.Normalize()
	if _, _, err := sectorpack.SolveMultiGreedy(context.Background(), multi, sectorpack.Options{}); err != nil {
		t.Fatalf("multi: %v", err)
	}
}
