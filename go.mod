module sectorpack

go 1.22
