package sectorpack_test

import (
	"context"
	"fmt"
	"math"

	"sectorpack"
)

// Example shows the smallest possible end-to-end use: build an instance,
// solve it, read the plan.
func Example() {
	in := &sectorpack.Instance{
		Variant: sectorpack.Sectors,
		Customers: []sectorpack.Customer{
			{Theta: 0.2, R: 2, Demand: 3},
			{Theta: 0.5, R: 3, Demand: 4},
			{Theta: 3.0, R: 1, Demand: 5},
		},
		Antennas: []sectorpack.Antenna{
			{Rho: math.Pi / 2, Range: 5, Capacity: 7},
		},
	}
	in.Normalize()
	sol, err := sectorpack.SolveGreedy(context.Background(), in, sectorpack.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d of %d demand\n", sol.Profit, in.TotalDemand())
	// Output: served 7 of 12 demand
}

// ExampleSolveExact contrasts the heuristic with the exhaustive optimum on
// an instance where greedy's density ordering is misled.
func ExampleSolveExact() {
	in := &sectorpack.Instance{
		Variant: sectorpack.Angles,
		Customers: []sectorpack.Customer{
			{Theta: 0.10, R: 1, Demand: 1, Profit: 3}, // high density decoy
			{Theta: 0.20, R: 1, Demand: 5, Profit: 9},
			{Theta: 0.30, R: 1, Demand: 5, Profit: 9},
		},
		Antennas: []sectorpack.Antenna{{Rho: 1, Capacity: 10}},
	}
	in.Normalize()
	exact, _ := sectorpack.SolveExact(context.Background(), in)
	fmt.Printf("optimum %d\n", exact.Profit)
	// Output: optimum 18
}

// ExampleGenerate shows the workload generator and the certified bound.
func ExampleGenerate() {
	in, err := sectorpack.Generate(sectorpack.GenConfig{
		Family:  sectorpack.Hotspot,
		Variant: sectorpack.Sectors,
		Seed:    1, N: 50, M: 3,
	})
	if err != nil {
		panic(err)
	}
	sol, _ := sectorpack.SolveLocalSearch(context.Background(), in, sectorpack.Options{Seed: 1})
	fmt.Printf("feasible: %v, within bound: %v\n",
		sol.Assignment.Check(in) == nil,
		float64(sol.Profit) <= sectorpack.UpperBound(in))
	// Output: feasible: true, within bound: true
}

// ExampleCoverGreedy covers every customer with the fewest antennas the
// greedy can manage.
func ExampleCoverGreedy() {
	customers := []sectorpack.Customer{
		{ID: 0, Theta: 0.1, R: 1, Demand: 2, Profit: 2},
		{ID: 1, Theta: 0.3, R: 2, Demand: 2, Profit: 2},
		{ID: 2, Theta: 3.5, R: 1, Demand: 2, Profit: 2},
	}
	typ := sectorpack.CoverAntennaType{Rho: 1, Range: 4, Capacity: 6}
	res, err := sectorpack.CoverGreedy(context.Background(), customers, typ)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d antennas cover all %d customers\n", res.K(), len(customers))
	// Output: 2 antennas cover all 3 customers
}
