// Session routing. Delta-solve state is shard-local — the incremental
// solution a session mutates lives in one backend's memory — so sessions
// cannot ride the ring per request. Creation routes by the instance's
// fingerprint (same key a one-shot solve of it would use); every later
// request for that session ID is pinned to the backend that created it.
//
// Pin-loss honesty: if the proxy restarts (pins are in-memory) or the
// pinned backend is ejected, the proxy answers 404/503 rather than
// guessing a shard — a delta applied to a backend without the session's
// state would be silently wrong. Clients already treat 404 as "recreate
// the session", which is the correct recovery.
package main

import (
	"encoding/json"
	"net/http"
	"time"
)

// sessionCreateEnvelope is the routing view of a POST /session body.
type sessionCreateEnvelope struct {
	Solver   string          `json:"solver"`
	Seed     *int64          `json:"seed"`
	Instance json.RawMessage `json:"instance"`
}

func (p *Proxy) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	start := time.Now()
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	key := p.sessionCreateRoutingKey(body)
	// Creation is NOT idempotent (two attempts make two sessions), so no
	// transient-status retries: one attempt per backend, transport-level
	// failover only. A failed create leaves no pin, so nothing leaks.
	b, resp, err := p.forward(r.Context(), key, http.MethodPost, pathWithQuery(r, "/session"), body, false)
	if err != nil {
		p.writeForwardError(w, "/session", err)
		return
	}
	if resp.Status == http.StatusOK {
		var created struct {
			SessionID string `json:"session_id"`
		}
		if json.Unmarshal(resp.Body, &created) == nil && created.SessionID != "" {
			p.sessions.Store(created.SessionID, b)
		}
	}
	p.logRoute("session.create", b, resp.Status, start)
	passthrough(w, b, resp)
}

func (p *Proxy) sessionCreateRoutingKey(body []byte) string {
	var env sessionCreateEnvelope
	if err := json.Unmarshal(body, &env); err != nil || len(env.Instance) == 0 {
		return "raw:" + string(body)
	}
	return p.itemRoutingKey(batchEnvelope{Solver: env.Solver, Seed: env.Seed}, env.Instance)
}

// pinnedBackend resolves a session ID to its pinned backend, writing the
// honest refusal when there is no usable pin.
func (p *Proxy) pinnedBackend(w http.ResponseWriter, id string) (*backend, bool) {
	v, ok := p.sessions.Load(id)
	if !ok {
		// No pin: either the session never existed or the proxy restarted.
		// 404 tells the client to recreate, which is the only safe recovery.
		p.pinMisses.Add(1)
		writeProxyError(w, http.StatusNotFound, "unknown session "+id+" (no shard pin; recreate the session)")
		return nil, false
	}
	b := v.(*backend)
	if b.down.Load() {
		// The state exists but its shard is unreachable; routing the delta
		// elsewhere would apply it to nothing. Hold the pin and tell the
		// client when the shard might be back.
		p.writeNoBackend(w)
		return nil, false
	}
	return b, true
}

func (p *Proxy) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	start := time.Now()
	id := r.PathValue("id")
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	b, ok := p.pinnedBackend(w, id)
	if !ok {
		return
	}
	// A delta is retryable only when the client supplied an idempotency
	// key — the daemon then dedupes replays; without one a retried delta
	// would apply twice.
	var probe struct {
		IdempotencyKey string `json:"idempotency_key"`
	}
	retryable := json.Unmarshal(body, &probe) == nil && probe.IdempotencyKey != ""
	b.requests.Add(1)
	resp, err := b.client.Do(r.Context(), http.MethodPost, pathWithQuery(r, "/session/"+id+"/delta"), body, retryable)
	if err != nil {
		if r.Context().Err() == nil {
			p.markFailure(b, err)
		}
		p.writeForwardError(w, "/session/delta", err)
		return
	}
	p.markSuccess(b)
	p.routed.Add(1)
	if resp.Status == http.StatusNotFound {
		// The backend lost the session (TTL eviction, restart without a
		// journal); drop the stale pin so the client's recreate re-routes.
		p.sessions.Delete(id)
	}
	p.logRoute("session.delta", b, resp.Status, start)
	passthrough(w, b, resp)
}

func (p *Proxy) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	start := time.Now()
	id := r.PathValue("id")
	b, ok := p.pinnedBackend(w, id)
	if !ok {
		return
	}
	b.requests.Add(1)
	// DELETE is idempotent on the daemon (a second delete is 404), so
	// transient-status retries are safe.
	resp, err := b.client.Do(r.Context(), http.MethodDelete, "/session/"+id, nil, true)
	if err != nil {
		if r.Context().Err() == nil {
			p.markFailure(b, err)
		}
		p.writeForwardError(w, "/session/delete", err)
		return
	}
	p.markSuccess(b)
	p.routed.Add(1)
	if resp.Status == http.StatusOK || resp.Status == http.StatusNotFound {
		p.sessions.Delete(id)
	}
	p.logRoute("session.delete", b, resp.Status, start)
	passthrough(w, b, resp)
}
