// The consistent-hash ring. Each backend contributes vnodes points
// (FNV-1a of "name#i") on a uint64 circle; a key is served by the first
// point clockwise of its own hash whose backend is currently healthy.
//
// Two properties matter for the fleet:
//
//   - Stability: a request's shard depends only on the backend set and the
//     key, so every repeat of a solve (and, because the key is the PR-4
//     canonical fingerprint, every permuted duplicate of it) lands on the
//     shard whose LRU already holds the answer.
//   - Minimal rebalancing: when a backend is ejected its keys slide to the
//     next healthy point on the circle — roughly 1/N of the keyspace moves,
//     the rest of the fleet keeps its hot caches. The ring is never
//     rebuilt; health is a filter at lookup time, so a re-probed backend
//     gets its exact old arcs back.
package main

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringPoint is one virtual node: a position on the circle and the index of
// the backend that owns it.
type ringPoint struct {
	hash    uint64
	backend int
}

// ring is an immutable consistent-hash ring over backend indices.
type ring struct {
	points []ringPoint
	n      int // number of distinct backends
}

// defaultVNodes balances key spread (stddev of arc share shrinks like
// 1/sqrt(vnodes)) against lookup cost for the small fleets sectorproxy
// fronts.
const defaultVNodes = 64

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// newRing builds the ring for n backends named by names (the point hashes
// come from the names so the layout survives proxy restarts and is
// independent of flag order).
func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(names)*vnodes), n: len(names)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", name, v)), backend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Colliding points order by backend index so the layout is total.
		return r.points[a].backend < r.points[b].backend
	})
	return r
}

// pick returns the key's backends in preference order: the owner first,
// then each distinct backend encountered walking the circle — the failover
// order. Only backends passing healthy are included; the slice is empty
// when none do. order's backing array is the caller's scratch (may be nil).
func (r *ring) pick(key string, healthy func(int) bool, order []int) []int {
	order = order[:0]
	if len(r.points) == 0 {
		return order
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := 0
	taken := make([]bool, r.n)
	for i := 0; i < len(r.points) && seen < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.backend] {
			continue
		}
		taken[p.backend] = true
		seen++
		if healthy(p.backend) {
			order = append(order, p.backend)
		}
	}
	return order
}
