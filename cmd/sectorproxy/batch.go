// Batch routing: POST /solve/batch is split per item — each instance
// routes by its OWN canonical fingerprint to its home shard — solved as
// one sub-batch per backend, and re-assembled in the original request
// order. The split preserves each item's raw JSON bytes (the routing
// decode happens on private copies), so the backend solves exactly what
// the client sent; the re-assembly rewrites only each item's index field
// and leaves every other field's bytes untouched.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sectorpack/internal/model"
)

// batchEnvelope is the decoded /solve/batch body with the per-item raw
// bytes preserved for faithful re-forwarding.
type batchEnvelope struct {
	Solver        string            `json:"solver"`
	Seed          *int64            `json:"seed,omitempty"`
	TimeoutMillis int64             `json:"timeout_ms,omitempty"`
	FormatVersion int               `json:"format_version"`
	Instances     []json.RawMessage `json:"instances"`
}

// subBatch is the slice of a batch bound for one backend.
type subBatch struct {
	b       *backend
	items   []json.RawMessage
	indices []int // original positions of items, in order
}

// subResult is one backend's answer (or transport failure) for its slice.
type subResult struct {
	sub   *subBatch
	resp  *rawBatchResponse
	shard string // the backend's X-Sectord-Shard, if it stamps one
	err   error
}

// rawBatchResponse decodes a backend batch reply keeping item bytes raw.
type rawBatchResponse struct {
	Solver   string            `json:"solver"`
	OK       int               `json:"ok"`
	Failed   int               `json:"failed"`
	Degraded int               `json:"degraded"`
	Items    []json.RawMessage `json:"items"`
}

func (p *Proxy) handleBatch(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	start := time.Now()
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var env batchEnvelope
	if err := json.Unmarshal(body, &env); err != nil || len(env.Instances) == 0 {
		// Not a splittable batch: route the whole body by raw bytes and let
		// the owning backend produce the decode/validation error the daemon
		// would have produced directly.
		b, resp, ferr := p.forward(r.Context(), "raw:"+string(body), http.MethodPost, pathWithQuery(r, "/solve/batch"), body, true)
		if ferr != nil {
			p.writeForwardError(w, "/solve/batch", ferr)
			return
		}
		p.logRoute("batch", b, resp.Status, start)
		passthrough(w, b, resp)
		return
	}

	subs, routeErr := p.splitBatch(env)
	if routeErr != nil {
		p.writeNoBackend(w)
		return
	}
	if len(subs) == 1 {
		// Whole batch lives on one shard: plain passthrough, no re-assembly.
		sub := subs[0]
		sub.b.requests.Add(1)
		resp, err := sub.b.client.Do(r.Context(), http.MethodPost, pathWithQuery(r, "/solve/batch"), body, true)
		if err != nil {
			p.markFailure(sub.b, err)
			p.writeForwardError(w, "/solve/batch", err)
			return
		}
		p.markSuccess(sub.b)
		p.routed.Add(1)
		p.logRoute("batch", sub.b, resp.Status, start)
		passthrough(w, sub.b, resp)
		return
	}

	results := p.solveSubBatches(r, env, subs)

	// Re-assemble in request order. A sub-batch whose backend failed at the
	// transport level (after sectorclient retries and with no failover —
	// moving items to another shard would still answer them, but then the
	// response would depend on failure timing; per-item errors keep the
	// split deterministic) lands as per-item errors, matching the daemon's
	// own fail-soft batch semantics.
	items := make([]json.RawMessage, len(env.Instances))
	okCount, failed, degraded := 0, 0, 0
	var shards []string
	for _, res := range results {
		if res.shard != "" {
			shards = append(shards, res.shard)
		}
		if res.err != nil || res.resp == nil {
			msg := "backend unreachable"
			if res.err != nil {
				msg = "backend unreachable: " + res.err.Error()
			}
			for _, orig := range res.sub.indices {
				items[orig] = errorItem(orig, msg)
				failed++
			}
			continue
		}
		okCount += res.resp.OK
		failed += res.resp.Failed
		degraded += res.resp.Degraded
		for i, raw := range res.resp.Items {
			if i >= len(res.sub.indices) {
				break
			}
			orig := res.sub.indices[i]
			items[orig] = reindexItem(raw, orig)
		}
		// A backend that returned fewer items than asked (cannot happen with
		// an honest daemon) leaves nil slots; fill them as errors below.
	}
	for i, it := range items {
		if it == nil {
			items[i] = errorItem(i, "backend returned no answer for this item")
			failed++
		}
	}

	solver := env.Solver
	if solver == "" {
		solver = "auto"
	}
	out := map[string]any{
		"solver":     solver,
		"count":      len(env.Instances),
		"ok":         okCount,
		"failed":     failed,
		"degraded":   degraded,
		"elapsed_ms": float64(time.Since(start)) / float64(time.Millisecond),
		"items":      items,
	}
	w.Header().Set("Content-Type", "application/json")
	// A split batch was served by several shards; attribute them all, in a
	// stable order, so per-shard accounting downstream keeps working.
	sort.Strings(shards)
	if len(shards) > 0 {
		w.Header().Set(shardHeader, strings.Join(shards, ","))
	}
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// splitBatch groups the envelope's items by home shard. Items the proxy
// cannot fingerprint (bad item JSON) route by raw bytes so the owning
// backend produces the per-item error. Returns an error only when no
// backend is healthy.
func (p *Proxy) splitBatch(env batchEnvelope) ([]*subBatch, error) {
	byBackend := map[*backend]*subBatch{}
	var order []*subBatch
	for i, raw := range env.Instances {
		key := p.itemRoutingKey(env, raw)
		candidates := p.pickBackends(key)
		if len(candidates) == 0 {
			return nil, errNoBackend
		}
		b := candidates[0]
		sub, ok := byBackend[b]
		if !ok {
			sub = &subBatch{b: b}
			byBackend[b] = sub
			order = append(order, sub)
		}
		sub.items = append(sub.items, raw)
		sub.indices = append(sub.indices, i)
	}
	return order, nil
}

func (p *Proxy) itemRoutingKey(env batchEnvelope, raw json.RawMessage) string {
	var in *model.Instance
	if err := json.Unmarshal(raw, &in); err != nil || in == nil {
		return "raw:" + string(raw)
	}
	return p.instanceRoutingKey(in, env.Solver, env.Seed, raw)
}

// solveSubBatches fans the sub-batches out concurrently (one request per
// backend) and waits for all of them; the re-assembly needs every slice.
func (p *Proxy) solveSubBatches(r *http.Request, env batchEnvelope, subs []*subBatch) []subResult {
	ctx := r.Context()
	path := pathWithQuery(r, "/solve/batch")
	results := make([]subResult, len(subs))
	var wg sync.WaitGroup
	for si, sub := range subs {
		body, err := json.Marshal(map[string]any{
			"solver":         env.Solver,
			"seed":           env.Seed,
			"timeout_ms":     env.TimeoutMillis,
			"format_version": env.FormatVersion,
			"instances":      sub.items,
		})
		if err != nil {
			results[si] = subResult{sub: sub, err: err}
			continue
		}
		p.splits.Add(1)
		wg.Add(1)
		go func(si int, sub *subBatch, body []byte) {
			defer wg.Done()
			if ctx.Err() != nil {
				results[si] = subResult{sub: sub, err: ctx.Err()}
				return
			}
			sub.b.requests.Add(1)
			resp, err := sub.b.client.Do(ctx, http.MethodPost, path, body, true)
			if err != nil {
				if ctx.Err() == nil {
					p.markFailure(sub.b, err)
				}
				results[si] = subResult{sub: sub, err: err}
				return
			}
			p.markSuccess(sub.b)
			if resp.Status != http.StatusOK {
				results[si] = subResult{sub: sub, err: fmt.Errorf("backend %s: status %d: %s", sub.b.name, resp.Status, truncate(resp.Body, 200))}
				return
			}
			var rb rawBatchResponse
			if err := json.Unmarshal(resp.Body, &rb); err != nil {
				results[si] = subResult{sub: sub, err: fmt.Errorf("backend %s: bad batch response: %w", sub.b.name, err)}
				return
			}
			p.routed.Add(1)
			shard := resp.Header.Get(shardHeader)
			if shard == "" {
				shard = sub.b.name
			}
			results[si] = subResult{sub: sub, resp: &rb, shard: shard}
		}(si, sub, body)
	}
	wg.Wait()
	return results
}

// reindexItem rewrites an item's index field to its position in the
// original request, leaving every other field's bytes untouched (values
// stay raw, so float spellings survive the round trip).
func reindexItem(raw json.RawMessage, index int) json.RawMessage {
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		return raw
	}
	fields["index"] = json.RawMessage(strconv.Itoa(index))
	out, err := json.Marshal(fields)
	if err != nil {
		return raw
	}
	return out
}

func errorItem(index int, msg string) json.RawMessage {
	out, _ := json.Marshal(map[string]any{"index": index, "error": msg})
	return out
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
