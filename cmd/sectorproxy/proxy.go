// Command sectorproxy is the fleet front for sectord: a thin HTTP router
// that spreads /solve, /solve/batch, and session traffic across N sectord
// backends so one process's concurrency cap stops being the fleet's.
//
// Routing is a consistent-hash ring keyed by the PR-4 canonical cache
// fingerprint (internal/cache.RoutingKey), so every repeat of a solve —
// including permuted duplicates — lands on the shard whose LRU already
// holds the answer and whose singleflight collapses concurrent copies.
// Batches are split per item by each item's own fingerprint, solved on
// their home shards, and re-assembled in request order. Sessions are
// created on the shard their instance hashes to and pinned by session ID
// thereafter (delta-solve state is shard-local and cannot move).
//
// The proxy is deliberately semantics-free: request bodies are forwarded
// byte-for-byte (the routing decode happens on a private copy), and the
// backend's status, body, and headers — including shed 429s with their
// honest Retry-After, degraded answers, and cache provenance — pass
// through unchanged. The fleet differential suite pins that a proxied
// answer is identical to a direct one.
//
// Transport is internal/sectorclient's raw Do hook, so capped-exponential
// backoff, Retry-After floors, and idempotency discipline come from one
// place. Health is passive: consecutive transport-level failures eject a
// backend from the ring (its keyspace arcs slide to the next healthy
// backend; everyone else's stay put), and a background re-probe of
// /healthz readmits it with its exact old arcs back.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sectorpack/internal/cache"
	"sectorpack/internal/core"
	"sectorpack/internal/exact"
	"sectorpack/internal/model"
	"sectorpack/internal/sectorclient"
)

// ProxyConfig tunes the proxy.
type ProxyConfig struct {
	// Backends are the sectord base URLs the ring is built over.
	Backends []string
	// VNodes is the virtual-node count per backend; zero means
	// defaultVNodes.
	VNodes int
	// EjectAfter is how many consecutive transport-level failures eject a
	// backend until the next successful re-probe. Zero means 3.
	EjectAfter int
	// ReprobeInterval is the /healthz probe cadence for ejected backends.
	// Zero means 2s.
	ReprobeInterval time.Duration
	// Seed mirrors the backends' -seed default so the routing fingerprint
	// of a request that omits its seed matches the cache key the backend
	// computes. A mismatch costs cache locality, never correctness.
	Seed int64
	// MaxTuples mirrors the backends' -max-tuples for the same reason.
	MaxTuples int64
	// Client tunes the per-backend sectorclient (retry budget, backoff,
	// per-attempt timeout).
	Client sectorclient.Options
	// DrainTimeout bounds graceful shutdown; zero means 5s.
	DrainTimeout time.Duration
	// Logger receives one structured record per routed request. Nil
	// discards logs.
	Logger *slog.Logger
}

// DefaultEjectAfter is the consecutive-failure ejection threshold.
const DefaultEjectAfter = 3

// DefaultReprobeInterval is the ejected-backend probe cadence.
const DefaultReprobeInterval = 2 * time.Second

// maxProxyRequestBytes mirrors the daemon's request-body bound.
const maxProxyRequestBytes = 32 << 20

// shardHeader names the backend that served a response. Backends set it
// themselves when started with -shard; the proxy fills it with the
// backend base URL otherwise, so per-shard attribution always works.
const shardHeader = "X-Sectord-Shard"

// backend is one sectord behind the ring.
type backend struct {
	name   string // base URL, also the ring identity
	client *sectorclient.Client

	consecFails atomic.Int32
	down        atomic.Bool

	requests  expvar.Int // monotonic: requests routed here (incl. failover arrivals)
	failures  expvar.Int // monotonic: transport-level failures observed
	ejections expvar.Int // monotonic: times this backend was ejected
}

// Proxy is the routing front. Build with NewProxy, then Start to launch
// the re-probe loop (Close stops it).
type Proxy struct {
	cfg      ProxyConfig
	backends []*backend
	ring     *ring
	mux      *http.ServeMux
	logger   *slog.Logger

	// sessions pins session IDs to the backend holding their state.
	sessions sync.Map // string -> *backend

	probeStop chan struct{}
	probeDone chan struct{}
	probeOnce sync.Once

	requests  expvar.Int // monotonic: requests received
	routed    expvar.Int // monotonic: requests that reached some backend
	failovers expvar.Int // monotonic: ring walks past the owner after transport failure
	noBackend expvar.Int // monotonic: requests refused because no backend was healthy
	splits    expvar.Int // monotonic: batch sub-requests fanned out
	pinMisses expvar.Int // monotonic: session requests with no pinned backend
}

// NewProxy builds the routing front over the backend URLs.
func NewProxy(cfg ProxyConfig) *Proxy {
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultEjectAfter
	}
	if cfg.ReprobeInterval <= 0 {
		cfg.ReprobeInterval = DefaultReprobeInterval
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	p := &Proxy{
		cfg:       cfg,
		logger:    logger,
		mux:       http.NewServeMux(),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	names := make([]string, len(cfg.Backends))
	for i, raw := range cfg.Backends {
		name := strings.TrimRight(raw, "/")
		names[i] = name
		p.backends = append(p.backends, &backend{
			name:   name,
			client: sectorclient.New(name, cfg.Client),
		})
	}
	p.ring = newRing(names, cfg.VNodes)
	p.mux.HandleFunc("POST /solve", p.handleSolve)
	p.mux.HandleFunc("POST /solve/batch", p.handleBatch)
	p.mux.HandleFunc("POST /session", p.handleSessionCreate)
	p.mux.HandleFunc("POST /session/{id}/delta", p.handleSessionDelta)
	p.mux.HandleFunc("DELETE /session/{id}", p.handleSessionDelete)
	p.mux.HandleFunc("/healthz", p.handleHealthz)
	p.mux.HandleFunc("/debug/vars", p.handleVars)
	return p
}

// Handler returns the proxy's HTTP handler tree.
func (p *Proxy) Handler() http.Handler { return p.mux }

// Start launches the background re-probe loop for ejected backends.
func (p *Proxy) Start() {
	go func() {
		defer close(p.probeDone)
		t := time.NewTicker(p.cfg.ReprobeInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.probeEjected()
			case <-p.probeStop:
				return
			}
		}
	}()
}

// Close stops the re-probe loop.
func (p *Proxy) Close() {
	p.probeOnce.Do(func() { close(p.probeStop) })
	<-p.probeDone
}

// Serve accepts connections until ctx is cancelled, then drains.
func (p *Proxy) Serve(ctx context.Context, ln net.Listener) error {
	p.Start()
	defer p.Close()
	srv := &http.Server{Handler: p.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		dctx, cancel := context.WithTimeout(context.Background(), p.cfg.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			srv.Close()
			return err
		}
		<-errc
		return nil
	}
}

// probeEjected GETs /healthz on every ejected backend and readmits the
// ones that answer 200. The probe client is the backend's own (its
// per-attempt timeout applies); a probe is one attempt, never retried.
func (p *Proxy) probeEjected() {
	for _, b := range p.backends {
		if !b.down.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ReprobeInterval)
		resp, err := b.client.Do(ctx, http.MethodGet, "/healthz", nil, false)
		cancel()
		if err == nil && resp.Status == http.StatusOK {
			b.consecFails.Store(0)
			b.down.Store(false)
			p.logger.Info("backend readmitted", slog.String("backend", b.name))
		}
	}
}

// markFailure records a transport-level failure and ejects the backend at
// the threshold.
func (p *Proxy) markFailure(b *backend, err error) {
	b.failures.Add(1)
	if int(b.consecFails.Add(1)) >= p.cfg.EjectAfter && !b.down.Swap(true) {
		b.ejections.Add(1)
		p.logger.Warn("backend ejected",
			slog.String("backend", b.name),
			slog.String("error", err.Error()))
	}
}

func (p *Proxy) markSuccess(b *backend) {
	b.consecFails.Store(0)
}

func (p *Proxy) healthy(i int) bool { return !p.backends[i].down.Load() }

// pickBackends returns the key's backends in ring preference order,
// healthy ones only.
func (p *Proxy) pickBackends(key string) []*backend {
	order := p.ring.pick(key, p.healthy, nil)
	out := make([]*backend, len(order))
	for i, bi := range order {
		out[i] = p.backends[bi]
	}
	return out
}

func writeProxyError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeNoBackend is the answer when the ring has nobody healthy for a
// request: an honest 503 with the re-probe cadence as the retry hint.
func (p *Proxy) writeNoBackend(w http.ResponseWriter) {
	p.noBackend.Add(1)
	secs := int(p.cfg.ReprobeInterval / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeProxyError(w, http.StatusServiceUnavailable, "no healthy backend")
}

// passthrough writes a backend response to the client unchanged, filling
// the shard header with the backend name when the backend did not.
func passthrough(w http.ResponseWriter, b *backend, resp *sectorclient.RawResponse) {
	for _, h := range []string{"Content-Type", "Retry-After", "X-Sectord-Cache", "X-Sectord-Idempotent", shardHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if w.Header().Get(shardHeader) == "" {
		w.Header().Set(shardHeader, b.name)
	}
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
}

// readBody slurps the (bounded) request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyRequestBytes))
	if err != nil {
		writeProxyError(w, http.StatusBadRequest, "read request: "+err.Error())
		return nil, false
	}
	return body, true
}

// routeOptions is the Options value the routing fingerprint is computed
// with; it mirrors what the backend will use so the routing key equals the
// backend's cache key.
func (p *Proxy) routeOptions(seed *int64) core.Options {
	opt := core.Options{Seed: p.cfg.Seed, ExactLimits: exact.Limits{MaxTuples: p.cfg.MaxTuples}}
	if seed != nil {
		opt.Seed = *seed
	}
	return opt
}

// solveRoutingKey computes the consistent-hash key for one /solve-shaped
// body. Bodies the proxy cannot interpret (bad JSON, invalid instance)
// still route — deterministically, by raw bytes — so the owning backend
// can answer with its own error semantics and the proxy stays
// semantics-free.
func (p *Proxy) solveRoutingKey(body []byte) string {
	var req struct {
		Solver        string          `json:"solver"`
		Seed          *int64          `json:"seed"`
		TimeoutMillis int64           `json:"timeout_ms"`
		FormatVersion int             `json:"format_version"`
		Instance      *model.Instance `json:"instance"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Instance == nil {
		return "raw:" + string(body)
	}
	return p.instanceRoutingKey(req.Instance, req.Solver, req.Seed, body)
}

func (p *Proxy) instanceRoutingKey(in *model.Instance, solver string, seed *int64, raw []byte) string {
	name := solver
	if name == "" {
		name = "auto"
	}
	in.Normalize()
	if err := in.Validate(); err != nil {
		return "raw:" + string(raw)
	}
	key, err := cache.RoutingKey(in, p.routeOptions(seed), name)
	if err != nil {
		return "raw:" + string(raw)
	}
	return key
}

// forward sends the body to the key's backends in ring order: the owner
// first, then — on transport-level failure only — each failover candidate.
// HTTP responses of any status are terminal (they are the backend's honest
// answer and pass through); retryable controls sectorclient's own
// transient-status retry loop per backend.
func (p *Proxy) forward(ctx context.Context, key, method, path string, body []byte, retryable bool) (*backend, *sectorclient.RawResponse, error) {
	candidates := p.pickBackends(key)
	if len(candidates) == 0 {
		return nil, nil, errNoBackend
	}
	var lastErr error
	for i, b := range candidates {
		if i > 0 {
			p.failovers.Add(1)
		}
		b.requests.Add(1)
		resp, err := b.client.Do(ctx, method, path, body, retryable)
		if err != nil {
			if ctx.Err() != nil {
				return b, nil, err
			}
			p.markFailure(b, err)
			lastErr = err
			continue
		}
		p.markSuccess(b)
		p.routed.Add(1)
		return b, resp, nil
	}
	return nil, nil, fmt.Errorf("all %d candidate backends failed: %w", len(candidates), lastErr)
}

var errNoBackend = fmt.Errorf("no healthy backend")

// pathWithQuery re-attaches the client's query string (degraded=allow,
// cache=bypass, ...) so those per-request semantics pass through.
func pathWithQuery(r *http.Request, path string) string {
	if r.URL.RawQuery != "" {
		return path + "?" + r.URL.RawQuery
	}
	return path
}

func (p *Proxy) handleSolve(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	start := time.Now()
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	key := p.solveRoutingKey(body)
	b, resp, err := p.forward(r.Context(), key, http.MethodPost, pathWithQuery(r, "/solve"), body, true)
	if err != nil {
		p.writeForwardError(w, "/solve", err)
		return
	}
	p.logRoute("solve", b, resp.Status, start)
	passthrough(w, b, resp)
}

func (p *Proxy) writeForwardError(w http.ResponseWriter, route string, err error) {
	if err == errNoBackend {
		p.writeNoBackend(w)
		return
	}
	p.logger.Warn("forward failed", slog.String("route", route), slog.String("error", err.Error()))
	writeProxyError(w, http.StatusBadGateway, "backend unreachable: "+err.Error())
}

func (p *Proxy) logRoute(route string, b *backend, status int, start time.Time) {
	p.logger.Info("routed",
		slog.String("route", route),
		slog.String("backend", b.name),
		slog.Int("status", status),
		slog.Float64("duration_ms", float64(time.Since(start))/float64(time.Millisecond)))
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	for i := range p.backends {
		if p.healthy(i) {
			fmt.Fprintln(w, "ok")
			return
		}
	}
	writeProxyError(w, http.StatusServiceUnavailable, "no healthy backend")
}

// handleVars serves the proxy's metrics in the /debug/vars wire format
// (unpublished, same rationale as the daemon's).
func (p *Proxy) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	pinned := 0
	p.sessions.Range(func(_, _ any) bool { pinned++; return true })
	fmt.Fprintf(w, "{\n")
	fmt.Fprintf(w, "%q: %s", "sectorproxy.requests", p.requests.String())
	for _, kv := range []struct {
		name string
		v    *expvar.Int
	}{
		{"sectorproxy.routed", &p.routed},
		{"sectorproxy.failovers", &p.failovers},
		{"sectorproxy.no_backend", &p.noBackend},
		{"sectorproxy.batch_splits", &p.splits},
		{"sectorproxy.session_pin_misses", &p.pinMisses},
	} {
		fmt.Fprintf(w, ",\n%q: %s", kv.name, kv.v.String())
	}
	fmt.Fprintf(w, ",\n%q: %d", "sectorproxy.sessions_pinned", pinned)
	for _, b := range p.backends {
		state := "up"
		if b.down.Load() {
			state = "down"
		}
		fmt.Fprintf(w, ",\n%q: {\"state\": %q, \"requests\": %s, \"failures\": %s, \"ejections\": %s, \"consecutive_failures\": %d}",
			"sectorproxy.backend."+b.name, state, b.requests.String(), b.failures.String(), b.ejections.String(), b.consecFails.Load())
	}
	fmt.Fprintf(w, "\n}\n")
}
