// Batch split differential (ISSUE 9 satellite): a proxied /solve/batch is
// split across shards by per-item fingerprint, so the suite pins that the
// re-assembled reply is indistinguishable from one backend solving the
// whole batch — items in request order, per-item fields (including cache
// provenance and per-item errors) intact, envelope counts aggregated.
package main

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func batchBodyFor(t *testing.T, solver string, instances []*model.Instance) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"format_version": 1, "solver": solver, "instances": instances,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func decodeBatch(t *testing.T, raw []byte) (map[string]any, []map[string]any) {
	t.Helper()
	env := normalized(t, raw)
	rawItems, ok := env["items"].([]any)
	if !ok {
		t.Fatalf("batch response has no items array:\n%s", raw)
	}
	items := make([]map[string]any, len(rawItems))
	for i, it := range rawItems {
		m, ok := it.(map[string]any)
		if !ok {
			t.Fatalf("item %d is not an object:\n%s", i, raw)
		}
		items[i] = m
	}
	delete(env, "items")
	return env, items
}

// stripItemVariance removes the per-item fields that legitimately differ
// between a split and a single-backend run: timing always, and cache
// disposition (the direct backend's LRU history differs from the home
// shard's).
func stripItemVariance(items []map[string]any) {
	for _, it := range items {
		delete(it, "elapsed_ms")
		delete(it, "cache")
	}
}

func TestFleetBatchSplitPreservesOrder(t *testing.T) {
	backends, p, proxy := startFleet(t, 3)
	var instances []*model.Instance
	for i := 0; i < 8; i++ {
		in, err := gen.Generate(gen.Config{Family: gen.Uniform, Seed: int64(200 + i), N: 24, M: 3})
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, in)
	}
	// Duplicates of earlier items: they must come back at THEIR positions,
	// not their twin's, and they exercise the within-batch cache path.
	instances = append(instances, instances[0], instances[3])
	body := batchBodyFor(t, "greedy", instances)

	dStatus, dRaw, _ := post(t, backends[0].url()+"/solve/batch", body)
	pStatus, pRaw, _ := post(t, proxy.URL+"/solve/batch", body)
	if dStatus != http.StatusOK || pStatus != http.StatusOK {
		t.Fatalf("direct status %d, proxied status %d, want 200/200", dStatus, pStatus)
	}
	if p.splits.Value() < 2 {
		t.Errorf("batch_splits = %d; a 10-item batch over 3 shards should have split", p.splits.Value())
	}

	dEnv, dItems := decodeBatch(t, dRaw)
	pEnv, pItems := decodeBatch(t, pRaw)
	for _, env := range []map[string]any{dEnv, pEnv} {
		delete(env, "elapsed_ms")
	}
	if !reflect.DeepEqual(dEnv, pEnv) {
		t.Errorf("batch envelope differs:\ndirect:  %v\nproxied: %v", dEnv, pEnv)
	}
	if len(pItems) != len(instances) {
		t.Fatalf("proxied batch returned %d items for %d instances", len(pItems), len(instances))
	}
	for i, it := range pItems {
		if idx, _ := it["index"].(float64); int(idx) != i {
			t.Errorf("item at position %d carries index %v; re-assembly broke request order", i, it["index"])
		}
	}
	stripItemVariance(dItems)
	stripItemVariance(pItems)
	for i := range dItems {
		if !reflect.DeepEqual(dItems[i], pItems[i]) {
			t.Errorf("item %d differs after split/re-assembly:\ndirect:  %v\nproxied: %v", i, dItems[i], pItems[i])
		}
	}
}

func TestFleetBatchRepeatHitsEveryShardCache(t *testing.T) {
	_, _, proxy := startFleet(t, 3)
	var instances []*model.Instance
	for i := 0; i < 6; i++ {
		in, err := gen.Generate(gen.Config{Family: gen.Zipf, Seed: int64(300 + i), N: 30, M: 3})
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, in)
	}
	body := batchBodyFor(t, "greedy", instances)
	if status, _, _ := post(t, proxy.URL+"/solve/batch", body); status != http.StatusOK {
		t.Fatalf("warm-up batch: status %d", status)
	}
	status, raw, _ := post(t, proxy.URL+"/solve/batch", body)
	if status != http.StatusOK {
		t.Fatalf("repeat batch: status %d", status)
	}
	_, items := decodeBatch(t, raw)
	for i, it := range items {
		if got, _ := it["cache"].(string); got != "hit" {
			t.Errorf("repeat batch item %d cache = %q, want \"hit\" — per-item cache provenance must survive the split", i, got)
		}
	}
}

func TestFleetBatchBadItemKeepsPositionAndError(t *testing.T) {
	backends, _, proxy := startFleet(t, 3)
	good, err := gen.Generate(gen.Config{Family: gen.Uniform, Seed: 400, N: 20, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := gen.Generate(gen.Config{Family: gen.Uniform, Seed: 401, N: 20, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad.Customers[0].Demand = -5 // invalid: fails daemon-side validation
	instances := []*model.Instance{good, bad, good}
	body := batchBodyFor(t, "greedy", instances)

	_, dRaw, _ := post(t, backends[0].url()+"/solve/batch", body)
	pStatus, pRaw, _ := post(t, proxy.URL+"/solve/batch", body)
	if pStatus != http.StatusOK {
		t.Fatalf("batch with one bad item: status %d, want 200 with a per-item error", pStatus)
	}
	dEnv, dItems := decodeBatch(t, dRaw)
	pEnv, pItems := decodeBatch(t, pRaw)
	//sectorlint:ignore floateq JSON decodes the failed count as float64; small integer counts are exact
	if dEnv["failed"] != pEnv["failed"] || pEnv["failed"].(float64) != 1 {
		t.Errorf("failed counts: direct %v, proxied %v, want 1", dEnv["failed"], pEnv["failed"])
	}
	if msg, _ := pItems[1]["error"].(string); msg == "" {
		t.Errorf("bad item lost its error through the split: %v", pItems[1])
	}
	stripItemVariance(dItems)
	stripItemVariance(pItems)
	for i := range dItems {
		if !reflect.DeepEqual(dItems[i], pItems[i]) {
			t.Errorf("item %d differs:\ndirect:  %v\nproxied: %v", i, dItems[i], pItems[i])
		}
	}
}
