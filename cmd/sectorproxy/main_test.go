// Tests for the sectorproxy command front: flag validation and the
// signal-context run loop around the Proxy.
package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunFlagValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},                              // -backends is required
		{"-backends", "localhost:8377"}, // not a URL
		{"-backends", " , "},            // empty after splitting
		{"-backends", "http://x", "-log-format", "yaml"},
		{"-badflag"},
	} {
		if err := run(ctx, args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want a flag error", args)
		}
	}
}

// syncBuffer lets the test poll the proxy's log output while the serve
// goroutine is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunServesAndStopsOnSignalContext(t *testing.T) {
	backend := newFleetBackend(t, "s0")
	ctx, cancel := context.WithCancel(context.Background())
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-backends", backend.url()}, &buf)
	}()
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("proxy never logged its address: %q", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
		if i := strings.Index(buf.String(), "http://"); i >= 0 {
			rest := buf.String()[i+len("http://"):]
			if j := strings.IndexAny(rest, " \n\""); j > 0 {
				url = "http://" + rest[:j]
			}
		}
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d (a healthy backend is attached)", resp.StatusCode)
	}
	resp, err = http.Get(url + "/debug/vars")
	if err != nil {
		t.Fatalf("debug/vars: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars status %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after ctx cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after ctx cancel")
	}
}
