package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sectorpack/internal/sectorclient"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sectorproxy:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("sectorproxy", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", "localhost:8378", "listen address")
	backends := fs.String("backends", "", "comma-separated sectord base URLs (required), e.g. http://localhost:8377,http://localhost:8380")
	vnodes := fs.Int("vnodes", defaultVNodes, "virtual nodes per backend on the hash ring")
	ejectAfter := fs.Int("eject-after", DefaultEjectAfter, "consecutive transport failures before a backend is ejected")
	reprobe := fs.Duration("reprobe", DefaultReprobeInterval, "ejected-backend /healthz probe cadence")
	seed := fs.Int64("seed", 1, "routing-fingerprint seed; must match the backends' -seed for cache-aligned routing")
	maxTuples := fs.Int64("max-tuples", 200_000, "routing-fingerprint tuple budget; must match the backends' -max-tuples")
	attemptTimeout := fs.Duration("attempt-timeout", 30*time.Second, "per-attempt timeout on backend requests")
	maxRetries := fs.Int("max-retries", 2, "transient-status retries per backend before failover (negative = none)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("-backends is required (comma-separated sectord base URLs)")
	}
	var urls []string
	for _, raw := range strings.Split(*backends, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		if !strings.HasPrefix(raw, "http://") && !strings.HasPrefix(raw, "https://") {
			return fmt.Errorf("backend %q: want an http(s) base URL", raw)
		}
		urls = append(urls, raw)
	}
	if len(urls) == 0 {
		return fmt.Errorf("-backends is required (comma-separated sectord base URLs)")
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(logw, nil)
	case "json":
		handler = slog.NewJSONHandler(logw, nil)
	default:
		return fmt.Errorf("invalid -log-format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)
	p := NewProxy(ProxyConfig{
		Backends:        urls,
		VNodes:          *vnodes,
		EjectAfter:      *ejectAfter,
		ReprobeInterval: *reprobe,
		Seed:            *seed,
		MaxTuples:       *maxTuples,
		Client: sectorclient.Options{
			Timeout:    *attemptTimeout,
			MaxRetries: *maxRetries,
		},
		DrainTimeout: *drain,
		Logger:       logger,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening",
		slog.String("url", "http://"+ln.Addr().String()),
		slog.Int("backends", len(urls)))
	err = p.Serve(ctx, ln)
	if err == nil {
		logger.Info("shut down cleanly")
	}
	return err
}
