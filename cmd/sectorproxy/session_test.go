// Session routing tests: a session's delta-solve state lives on exactly
// one shard, so the proxy must pin every request for a session ID to the
// backend that created it, answer honestly (404) when it has no pin, and
// produce delta-by-delta answers identical to a direct single-backend
// session.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/sectorclient"
)

func sessionCreateBody(t *testing.T, in *model.Instance) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"format_version": 1, "solver": "greedy", "instance": in,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func deltaBody(t *testing.T, key string, d model.Delta) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"format_version": 1, "idempotency_key": key, "delta": d,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func sessionDeltas() []model.Delta {
	return []model.Delta{
		{SetDemand: []model.DemandChange{{Customer: 1, Demand: 7}}},
		{Remove: []int{0}, Add: []model.Customer{{Theta: 1.2, R: 2.0, Demand: 3}}},
	}
}

func TestFleetSessionPinnedDifferential(t *testing.T) {
	backends, _, proxy := startFleet(t, 3)
	in, err := gen.Generate(gen.Config{Family: gen.Uniform, Seed: 500, N: 30, M: 4})
	if err != nil {
		t.Fatal(err)
	}

	// The reference run: one session held entirely by one backend.
	var directAnswers []map[string]any
	status, raw, _ := post(t, backends[0].url()+"/session", sessionCreateBody(t, in))
	if status != http.StatusOK {
		t.Fatalf("direct create: status %d\n%s", status, raw)
	}
	direct := normalized(t, raw)
	directID, _ := direct["session_id"].(string)
	delete(direct, "session_id")
	directAnswers = append(directAnswers, direct)
	for i, d := range sessionDeltas() {
		status, raw, _ = post(t, backends[0].url()+"/session/"+directID+"/delta", deltaBody(t, fmt.Sprintf("dk%d", i), d))
		if status != http.StatusOK {
			t.Fatalf("direct delta %d: status %d\n%s", i, status, raw)
		}
		m := normalized(t, raw)
		delete(m, "session_id")
		directAnswers = append(directAnswers, m)
	}

	// The proxied run must match answer for answer, and every request
	// after creation must land on the creating shard.
	status, raw, hdr := post(t, proxy.URL+"/session", sessionCreateBody(t, in))
	if status != http.StatusOK {
		t.Fatalf("proxied create: status %d\n%s", status, raw)
	}
	home := hdr.Get("X-Sectord-Shard")
	if home == "" {
		t.Fatal("proxied session create carries no shard attribution")
	}
	prox := normalized(t, raw)
	proxID, _ := prox["session_id"].(string)
	if proxID == "" {
		t.Fatalf("proxied create returned no session_id:\n%s", raw)
	}
	delete(prox, "session_id")
	if !reflect.DeepEqual(directAnswers[0], prox) {
		t.Errorf("create answers differ:\ndirect:  %v\nproxied: %v", directAnswers[0], prox)
	}
	for i, d := range sessionDeltas() {
		status, raw, hdr = post(t, proxy.URL+"/session/"+proxID+"/delta", deltaBody(t, fmt.Sprintf("pk%d", i), d))
		if status != http.StatusOK {
			t.Fatalf("proxied delta %d: status %d\n%s", i, status, raw)
		}
		if got := hdr.Get("X-Sectord-Shard"); got != home {
			t.Errorf("delta %d served by shard %q, want pinned shard %q", i, got, home)
		}
		m := normalized(t, raw)
		delete(m, "session_id")
		if !reflect.DeepEqual(directAnswers[i+1], m) {
			t.Errorf("delta %d answers differ:\ndirect:  %v\nproxied: %v", i, directAnswers[i+1], m)
		}
	}

	// Delete through the proxy unpins; the next delta is an honest 404.
	req, _ := http.NewRequest(http.MethodDelete, proxy.URL+"/session/"+proxID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied delete: status %d", resp.StatusCode)
	}
	status, _, _ = post(t, proxy.URL+"/session/"+proxID+"/delta", deltaBody(t, "after-delete", sessionDeltas()[0]))
	if status != http.StatusNotFound {
		t.Errorf("delta after delete: status %d, want 404", status)
	}
}

func TestFleetSessionPinLossIsHonest404(t *testing.T) {
	backends, _, proxy := startFleet(t, 2)
	in, err := gen.Generate(gen.Config{Family: gen.Uniform, Seed: 501, N: 24, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	status, raw, _ := post(t, proxy.URL+"/session", sessionCreateBody(t, in))
	if status != http.StatusOK {
		t.Fatalf("create: status %d", status)
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(raw, &created); err != nil || created.SessionID == "" {
		t.Fatalf("bad create response: %v\n%s", err, raw)
	}

	// A second proxy over the same fleet (a restart: pins are in-memory)
	// must refuse to guess which shard holds the session.
	p2 := NewProxy(ProxyConfig{
		Backends: []string{backends[0].url(), backends[1].url()},
		Seed:     1, MaxTuples: 200_000,
		Client: sectorclient.Options{MaxRetries: -1},
	})
	ts2 := httptest.NewServer(p2.Handler())
	defer ts2.Close()
	resp, err := http.Post(
		ts2.URL+"/session/"+created.SessionID+"/delta",
		"application/json",
		bytes.NewReader(deltaBody(t, "k", sessionDeltas()[0])),
	)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pin-lost delta: status %d, want 404", resp.StatusCode)
	}
	if p2.pinMisses.Value() != 1 {
		t.Errorf("session_pin_misses = %d, want 1", p2.pinMisses.Value())
	}
}
