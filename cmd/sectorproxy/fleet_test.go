// The fleet differential suite (ISSUE 9 headline): real internal/daemon
// backends boot in-process — race-instrumented, not spawned binaries —
// behind a real Proxy, and every route is pinned byte-identical to a
// direct backend answer. The backends all run the same deterministic
// config, so WHERE the ring sends a request must never change WHAT comes
// back; any divergence is the proxy editorialising, which is the one
// thing it must never do. The kill test restarts a backend on its own
// port mid-run to cover ejection, rebalance, and readmission on live
// traffic.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/daemon"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/sectorclient"
)

// fleetBackend is one real daemon served over TCP on a stable port, so
// tests can kill it (connection refused, not an HTTP error) and bring it
// back on the same address.
type fleetBackend struct {
	addr    string
	handler http.Handler
	srv     *http.Server
}

func newFleetBackend(t *testing.T, shard string) *fleetBackend {
	t.Helper()
	s := daemon.NewServer(daemon.Config{
		Seed:        1,
		MaxInflight: 16,
		MaxTuples:   200_000,
		ShardName:   shard,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb := &fleetBackend{addr: ln.Addr().String(), handler: s.Handler()}
	fb.start(t, ln)
	t.Cleanup(fb.stop)
	return fb
}

func (fb *fleetBackend) start(t *testing.T, ln net.Listener) {
	t.Helper()
	fb.srv = &http.Server{Handler: fb.handler}
	go fb.srv.Serve(ln)
}

func (fb *fleetBackend) stop() {
	if fb.srv != nil {
		fb.srv.Close()
		fb.srv = nil
	}
}

// restart rebinds the backend's original port. The port was just freed by
// stop, but the OS may lag; retry briefly.
func (fb *fleetBackend) restart(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", fb.addr)
		if err == nil {
			fb.start(t, ln)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", fb.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (fb *fleetBackend) url() string { return "http://" + fb.addr }

// startFleet boots n backends (shards s0..s(n-1)) and a proxy over them.
func startFleet(t *testing.T, n int) ([]*fleetBackend, *Proxy, *httptest.Server) {
	t.Helper()
	backends := make([]*fleetBackend, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = newFleetBackend(t, fmt.Sprintf("s%d", i))
		urls[i] = backends[i].url()
	}
	p := NewProxy(ProxyConfig{
		Backends:        urls,
		EjectAfter:      1,
		ReprobeInterval: 50 * time.Millisecond,
		Seed:            1,
		MaxTuples:       200_000,
		// No transient-status retries: tests want the backend's first
		// honest answer, and transport failures should fail over at once.
		Client: sectorclient.Options{MaxRetries: -1, Timeout: 10 * time.Second},
	})
	p.Start()
	t.Cleanup(p.Close)
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return backends, p, ts
}

func post(t *testing.T, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

// normalized decodes a response body and strips the timing field — the
// only legitimately nondeterministic part of a daemon answer.
func normalized(t *testing.T, raw []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, raw)
	}
	delete(m, "elapsed_ms")
	return m
}

func solveBodyFor(t *testing.T, solver string, in *model.Instance) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"format_version": 1, "solver": solver, "instance": in,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func fleetInstances(t *testing.T) []*model.Instance {
	t.Helper()
	var out []*model.Instance
	for i, cfg := range []gen.Config{
		{Family: gen.Uniform, Seed: 11, N: 30, M: 4},
		{Family: gen.Hotspot, Seed: 12, N: 40, M: 4},
		{Family: gen.Uniform, Seed: 13, N: 24, M: 3, Variant: model.DisjointAngles},
	} {
		in, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in.Name = fmt.Sprintf("fleet-%d", i)
		out = append(out, in)
	}
	return out
}

// TestFleetDifferentialAllSolvers is the headline: for every registry
// solver and a spread of instances, the proxied answer — status AND body,
// success or error — is identical to asking a backend directly.
func TestFleetDifferentialAllSolvers(t *testing.T) {
	backends, _, proxy := startFleet(t, 3)
	instances := fleetInstances(t)
	shards := map[string]bool{}
	for _, solver := range core.Names() {
		for _, in := range instances {
			body := solveBodyFor(t, solver, in)
			dStatus, dRaw, _ := post(t, backends[0].url()+"/solve", body)
			pStatus, pRaw, pHdr := post(t, proxy.URL+"/solve", body)
			if dStatus != pStatus {
				t.Errorf("%s/%s: direct status %d, proxied %d", solver, in.Name, dStatus, pStatus)
				continue
			}
			if d, p := normalized(t, dRaw), normalized(t, pRaw); !reflect.DeepEqual(d, p) {
				t.Errorf("%s/%s: proxied answer differs from direct\ndirect:  %v\nproxied: %v", solver, in.Name, d, p)
			}
			if shard := pHdr.Get("X-Sectord-Shard"); shard == "" {
				t.Errorf("%s/%s: proxied response carries no shard attribution", solver, in.Name)
			} else {
				shards[shard] = true
			}
		}
	}
	if len(shards) < 2 {
		t.Errorf("all %d solver×instance answers came from shards %v; the ring is not spreading", len(core.Names())*len(instances), shards)
	}
}

// TestFleetPermutedDuplicateKeepsShardAndCache pins the routing key
// choice: a permuted duplicate of an instance must land on the same shard
// (the canonical fingerprint is order-insensitive) and hit its cache.
func TestFleetPermutedDuplicateKeepsShardAndCache(t *testing.T) {
	_, _, proxy := startFleet(t, 3)
	in, err := gen.Generate(gen.Config{Family: gen.Uniform, Seed: 21, N: 40, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	status, _, hdr := post(t, proxy.URL+"/solve", solveBodyFor(t, "greedy", in))
	if status != http.StatusOK {
		t.Fatalf("first solve: status %d", status)
	}
	home := hdr.Get("X-Sectord-Shard")

	perm := &model.Instance{Variant: in.Variant, Antennas: in.Antennas}
	perm.Customers = append([]model.Customer(nil), in.Customers...)
	rand.New(rand.NewSource(5)).Shuffle(len(perm.Customers), func(i, j int) {
		perm.Customers[i], perm.Customers[j] = perm.Customers[j], perm.Customers[i]
	})
	status, _, hdr = post(t, proxy.URL+"/solve", solveBodyFor(t, "greedy", perm))
	if status != http.StatusOK {
		t.Fatalf("permuted solve: status %d", status)
	}
	if got := hdr.Get("X-Sectord-Shard"); got != home {
		t.Errorf("permuted duplicate routed to shard %q, want home shard %q", got, home)
	}
	if got := hdr.Get("X-Sectord-Cache"); got != "hit" {
		t.Errorf("permuted duplicate X-Sectord-Cache = %q, want \"hit\" (fingerprint routing should land on the warm LRU)", got)
	}
}

// TestFleetBackendKillRebalanceReadmit kills a backend mid-run: traffic
// must fail over with byte-identical answers, the victim must be ejected,
// and after restart the re-probe must put it back to work.
func TestFleetBackendKillRebalanceReadmit(t *testing.T) {
	backends, p, proxy := startFleet(t, 3)
	var bodies [][]byte
	for i := 0; i < 12; i++ {
		in, err := gen.Generate(gen.Config{Family: gen.Uniform, Seed: int64(100 + i), N: 30, M: 4})
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, solveBodyFor(t, "greedy", in))
	}
	pass := func(label string) []map[string]any {
		out := make([]map[string]any, len(bodies))
		for i, body := range bodies {
			status, raw, _ := post(t, proxy.URL+"/solve", body)
			if status != http.StatusOK {
				t.Fatalf("%s: solve %d: status %d\n%s", label, i, status, raw)
			}
			out[i] = normalized(t, raw)
		}
		return out
	}

	before := pass("all-up")
	backends[1].stop()
	during := pass("backend-1-dead")
	for i := range before {
		if !reflect.DeepEqual(before[i], during[i]) {
			t.Errorf("solve %d changed its answer when backend 1 died:\nbefore: %v\nafter:  %v", i, before[i], during[i])
		}
	}
	if !p.backends[1].down.Load() {
		t.Error("backend 1 took traffic losses but was never ejected")
	}

	backends[1].restart(t)
	deadline := time.Now().Add(5 * time.Second)
	for p.backends[1].down.Load() {
		if time.Now().After(deadline) {
			t.Fatal("backend 1 restarted but the re-probe never readmitted it")
		}
		time.Sleep(20 * time.Millisecond)
	}
	after := pass("readmitted")
	for i := range before {
		if !reflect.DeepEqual(before[i], after[i]) {
			t.Errorf("solve %d changed its answer across eject/readmit:\nbefore: %v\nafter:  %v", i, before[i], after[i])
		}
	}
}
