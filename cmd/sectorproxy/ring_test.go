package main

import (
	"fmt"
	"testing"
)

func allHealthy(int) bool { return true }

func TestRingStableAndCoversAllBackends(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r := newRing(names, 0)
	served := map[int]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("key-%d", i)
		first := r.pick(key, allHealthy, nil)
		if len(first) != len(names) {
			t.Fatalf("key %q: %d candidates, want all %d backends in failover order", key, len(first), len(names))
		}
		seen := map[int]bool{}
		for _, b := range first {
			if seen[b] {
				t.Fatalf("key %q: backend %d listed twice in failover order", key, b)
			}
			seen[b] = true
		}
		again := r.pick(key, allHealthy, nil)
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("key %q: pick is not deterministic (%v vs %v)", key, first, again)
			}
		}
		served[first[0]]++
	}
	for i := range names {
		if served[i] == 0 {
			t.Errorf("backend %d owns no keys out of 3000; vnode spread is broken", i)
		}
		// With 64 vnodes the expected share is ~1000±; a backend under a
		// quarter of fair share signals a hashing bug, not bad luck.
		if served[i] < 250 {
			t.Errorf("backend %d owns only %d/3000 keys", i, served[i])
		}
	}
}

func TestRingEjectionMovesOnlyVictimsKeys(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c", "http://d"}
	r := newRing(names, 0)
	const keys = 2000
	before := make([]int, keys)
	for i := 0; i < keys; i++ {
		before[i] = r.pick(fmt.Sprintf("key-%d", i), allHealthy, nil)[0]
	}
	const dead = 2
	alive := func(b int) bool { return b != dead }
	moved := 0
	for i := 0; i < keys; i++ {
		after := r.pick(fmt.Sprintf("key-%d", i), alive, nil)
		if before[i] != dead {
			// Survivors' keys must not move: that is the whole point of
			// consistent hashing.
			if after[0] != before[i] {
				t.Fatalf("key-%d: owner moved %d -> %d though %d never went down", i, before[i], after[0], before[i])
			}
			continue
		}
		moved++
		if after[0] == dead {
			t.Fatalf("key-%d still routed to the ejected backend", i)
		}
	}
	if moved == 0 {
		t.Fatal("ejected backend owned no keys; the test proved nothing")
	}
	// Readmission is a pure filter flip: every key gets its old owner back.
	for i := 0; i < keys; i++ {
		if got := r.pick(fmt.Sprintf("key-%d", i), allHealthy, nil)[0]; got != before[i] {
			t.Fatalf("key-%d: owner %d after readmission, want original %d", i, got, before[i])
		}
	}
}

func TestRingAllDownYieldsEmpty(t *testing.T) {
	r := newRing([]string{"http://a", "http://b"}, 8)
	if got := r.pick("k", func(int) bool { return false }, nil); len(got) != 0 {
		t.Fatalf("all backends down: pick returned %v, want empty", got)
	}
}

func TestRingSingleBackendOwnsEverything(t *testing.T) {
	r := newRing([]string{"http://only"}, 8)
	for i := 0; i < 100; i++ {
		got := r.pick(fmt.Sprintf("key-%d", i), allHealthy, nil)
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("key-%d: %v, want [0]", i, got)
		}
	}
}
