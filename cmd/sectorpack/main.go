// Command sectorpack solves a sector-packing instance file with a chosen
// algorithm and prints the solution.
//
// Usage:
//
//	sectorpack -in instance.json [-solver greedy] [-seed 1] [-eps 0.05] [-v] [-viz]
//
// The instance format is the JSON envelope written by cmd/sectorgen (or
// model.WriteJSON). Solvers: anneal, disjoint-dp, exact, greedy,
// localsearch, lpround, unitflow.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sectorpack/internal/core"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
	"sectorpack/internal/viz"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sectorpack:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sectorpack", flag.ContinueOnError)
	fs.SetOutput(out)
	inPath := fs.String("in", "", "instance JSON file (required)")
	solverName := fs.String("solver", "greedy", "solver: "+strings.Join(core.Names(), ", "))
	seed := fs.Int64("seed", 1, "seed for randomized components")
	eps := fs.Float64("eps", 0, "force the FPTAS inner knapsack with this epsilon (0 = auto exact/approx)")
	timeout := fs.Duration("timeout", 0, "abort the solve after this long (0 = no deadline; Ctrl-C always cancels)")
	verbose := fs.Bool("v", false, "print the per-antenna breakdown")
	vizFlag := fs.Bool("viz", false, "draw an ASCII polar plot of the solution")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}
	in, err := model.LoadFile(*inPath)
	if err != nil {
		return err
	}
	solver, err := core.Get(*solverName)
	if err != nil {
		return err
	}
	opt := core.Options{Seed: *seed}
	if *eps > 0 {
		opt.Knapsack = knapsack.Options{ForceApprox: true, Eps: *eps}
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sol, err := solver(ctx, in, opt)
	if err != nil {
		return err
	}
	if err := sol.Assignment.Check(in); err != nil {
		return fmt.Errorf("internal error: solver returned infeasible assignment: %w", err)
	}
	fmt.Fprintf(out, "instance   %s (%s, n=%d, m=%d, tightness=%.2f)\n",
		in.Name, in.Variant, in.N(), in.M(), in.Tightness())
	fmt.Fprintf(out, "solution   %s\n", sol)
	fmt.Fprintf(out, "served     %d/%d customers, demand %d/%d\n",
		sol.Assignment.ServedCount(), in.N(), sol.Assignment.ServedDemand(in), in.TotalDemand())
	if *verbose {
		load := sol.Assignment.Load(in)
		for j, a := range in.Antennas {
			served := 0
			for _, owner := range sol.Assignment.Owner {
				if owner == j {
					served++
				}
			}
			fmt.Fprintf(out, "antenna %2d  α=%7.2f° ρ=%6.2f° load %d/%d (%d customers)\n",
				j, geom.Degrees(sol.Assignment.Orientation[j]), geom.Degrees(a.Rho),
				load[j], a.Capacity, served)
		}
	}
	if *vizFlag {
		fmt.Fprint(out, viz.Render(in, sol.Assignment, viz.Options{Rays: true}))
	}
	return nil
}
