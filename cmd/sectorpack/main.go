// Command sectorpack solves a sector-packing instance file with a chosen
// algorithm and prints the solution.
//
// Usage:
//
//	sectorpack -in instance.json [-solver greedy] [-seed 1] [-eps 0.05] [-v] [-viz]
//	sectorpack -in big.json -solver baseline -bound=false
//	sectorpack -batch -in batch.json [-workers 4] [-timeout 5s]
//	sectorpack -in instance.json -server http://localhost:8377
//
// With -server, the solve runs on a sectord daemon instead of in-process:
// the internal/sectorclient retry loop rides out shed load and daemon
// restarts, and the answer is re-verified locally before printing.
//
// The instance format is the JSON envelope written by cmd/sectorgen (or
// model.WriteJSON). With -batch, -in names a multi-instance envelope
// (sectorgen -count, or model.WriteBatchJSON) solved concurrently on a
// bounded worker pool; each item succeeds or fails on its own. Solvers:
// anneal, disjoint-dp, exact, greedy, localsearch, lpround, unitflow.
//
// The fractional upper bound printed alongside the profit costs one
// knapsack relaxation per candidate orientation — quadratic in the
// per-antenna eligible count — so on the large generator tiers (n=100k
// and up) pass -bound=false to skip it; the solve itself stays fast.
//
// Exit codes: 0 = full solve, 1 = error (in batch mode: any item failed),
// 3 = the -timeout deadline expired and a degraded fallback result was
// served instead (stderr names the fallback solver; disable with
// -fallback=false to get a hard error). A batch where every item solved
// but some degraded also exits 3.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
	"sectorpack/internal/sectorclient"
	"sectorpack/internal/viz"
)

// exitDegraded is the exit code for a degraded (fallback) solve, distinct
// from 0 (full solve) and 1 (error) so scripts can tell them apart.
const exitDegraded = 3

// degradedError signals main to exit with exitDegraded after run has
// already printed the degraded solution.
type degradedError struct {
	solverUsed string
	reason     string
	detail     string
}

func (e *degradedError) Error() string {
	return fmt.Sprintf("degraded result from fallback solver %q (%s: %s)", e.solverUsed, e.reason, e.detail)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sectorpack:", err)
		var de *degradedError
		if errors.As(err, &de) {
			os.Exit(exitDegraded)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sectorpack", flag.ContinueOnError)
	fs.SetOutput(out)
	inPath := fs.String("in", "", "instance JSON file (required)")
	solverName := fs.String("solver", "greedy", "solver: "+strings.Join(core.Names(), ", "))
	seed := fs.Int64("seed", 1, "seed for randomized components")
	eps := fs.Float64("eps", 0, "force the FPTAS inner knapsack with this epsilon (0 = auto exact/approx)")
	timeout := fs.Duration("timeout", 0, "abort the solve after this long (0 = no deadline; Ctrl-C always cancels)")
	fallback := fs.Bool("fallback", true, "with -timeout: serve a greedy fallback result when the deadline expires (exit code 3) instead of failing")
	verbose := fs.Bool("v", false, "print the per-antenna breakdown")
	vizFlag := fs.Bool("viz", false, "draw an ASCII polar plot of the solution")
	batch := fs.Bool("batch", false, "treat -in as a multi-instance batch envelope (sectorgen -count)")
	server := fs.String("server", "", "solve remotely on a sectord daemon at this base URL (e.g. http://localhost:8377) instead of in-process")
	workers := fs.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	bound := fs.Bool("bound", true, "compute the fractional upper bound and optimality gap (quadratic in the per-antenna eligible count; use -bound=false at n=100k and above)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}
	if *server != "" {
		if *batch {
			return fmt.Errorf("-batch is not supported with -server (the daemon has its own /solve/batch route)")
		}
		if *eps > 0 {
			return fmt.Errorf("-eps is local-only; the daemon owns its knapsack settings")
		}
		return runRemote(ctx, out, remoteConfig{
			server:   *server,
			inPath:   *inPath,
			solver:   *solverName,
			seed:     *seed,
			timeout:  *timeout,
			fallback: *fallback,
			verbose:  *verbose,
			viz:      *vizFlag,
		})
	}
	if *batch {
		if *vizFlag {
			return fmt.Errorf("-viz is not supported with -batch")
		}
		return runBatch(ctx, out, batchConfig{
			inPath:   *inPath,
			solver:   *solverName,
			seed:     *seed,
			eps:      *eps,
			timeout:  *timeout,
			fallback: *fallback,
			workers:  *workers,
			verbose:  *verbose,
			bound:    *bound,
		})
	}
	in, err := model.LoadFile(*inPath)
	if err != nil {
		return err
	}
	solver, err := core.Get(*solverName)
	if err != nil {
		return err
	}
	opt := core.Options{Seed: *seed, SkipBound: !*bound}
	if *eps > 0 {
		opt.Knapsack = knapsack.Options{ForceApprox: true, Eps: *eps}
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var sol model.Solution
	if *timeout > 0 && *fallback {
		// Hedged: if the requested solver cannot beat the deadline (or
		// panics, or misbehaves), the greedy safety net's answer is
		// printed instead and main exits with the degraded code.
		sol, err = core.SolveHedged(ctx, in, solver, core.HedgeOptions{
			Options:     opt,
			PrimaryName: *solverName,
		})
	} else {
		sol, err = solver(ctx, in, opt)
	}
	if err != nil {
		return err
	}
	if err := sol.Assignment.Check(in); err != nil {
		return fmt.Errorf("internal error: solver returned infeasible assignment: %w", err)
	}
	return printSolution(out, in, sol, *solverName, *verbose, *vizFlag)
}

// printSolution renders the solve report shared by the local and remote
// paths, returning a degradedError when the answer came from a fallback.
func printSolution(out io.Writer, in *model.Instance, sol model.Solution, requested string, verbose, vizFlag bool) error {
	fmt.Fprintf(out, "instance   %s (%s, n=%d, m=%d, tightness=%.2f)\n",
		in.Name, in.Variant, in.N(), in.M(), in.Tightness())
	fmt.Fprintf(out, "solution   %s\n", sol)
	if sol.Degraded {
		fmt.Fprintf(out, "degraded   requested %q fell back to %q (%s)\n",
			requested, sol.SolverUsed, sol.FallbackReason)
	}
	fmt.Fprintf(out, "served     %d/%d customers, demand %d/%d\n",
		sol.Assignment.ServedCount(), in.N(), sol.Assignment.ServedDemand(in), in.TotalDemand())
	if verbose {
		load := sol.Assignment.Load(in)
		for j, a := range in.Antennas {
			served := 0
			for _, owner := range sol.Assignment.Owner {
				if owner == j {
					served++
				}
			}
			fmt.Fprintf(out, "antenna %2d  α=%7.2f° ρ=%6.2f° load %d/%d (%d customers)\n",
				j, geom.Degrees(sol.Assignment.Orientation[j]), geom.Degrees(a.Rho),
				load[j], a.Capacity, served)
		}
	}
	if vizFlag {
		fmt.Fprint(out, viz.Render(in, sol.Assignment, viz.Options{Rays: true}))
	}
	if sol.Degraded {
		return &degradedError{solverUsed: sol.SolverUsed, reason: sol.FallbackReason, detail: sol.FallbackDetail}
	}
	return nil
}

// remoteConfig carries the flag values into runRemote.
type remoteConfig struct {
	server   string
	inPath   string
	solver   string
	seed     int64
	timeout  time.Duration
	fallback bool
	verbose  bool
	viz      bool
}

// runRemote ships the instance to a sectord daemon and prints its answer.
// The client retries transient failures (shed load, restarts) on its own;
// the answer is re-checked locally before printing, so a buggy or tampered
// daemon can cost an error, never an infeasible report.
func runRemote(ctx context.Context, out io.Writer, cfg remoteConfig) error {
	in, err := model.LoadFile(cfg.inPath)
	if err != nil {
		return err
	}
	c := sectorclient.New(cfg.server, sectorclient.Options{})
	res, err := c.Solve(ctx, cfg.solver, in, sectorclient.SolveOptions{
		Seed:          &cfg.seed,
		TimeoutMillis: cfg.timeout.Milliseconds(),
		AllowDegraded: cfg.timeout > 0 && cfg.fallback,
	})
	if err != nil {
		return err
	}
	as := res.Assignment()
	if err := as.Check(in); err != nil {
		return fmt.Errorf("daemon returned infeasible assignment: %w", err)
	}
	if got := as.Profit(in); got != res.Profit {
		return fmt.Errorf("daemon profit claim %d does not match the assignment's %d", res.Profit, got)
	}
	sol := model.Solution{
		Assignment: as,
		Profit:     res.Profit,
		Algorithm:  res.Algorithm,
		UpperBound: res.UpperBound,
		Degraded:   res.Degraded,
		SolverUsed: res.SolverUsed,
	}
	if res.Degraded {
		sol.FallbackReason = res.FallbackReason
	}
	if res.Attempts > 1 || res.CacheStatus == "hit" {
		fmt.Fprintf(out, "remote     %s (attempts=%d cache=%s)\n", cfg.server, res.Attempts, res.CacheStatus)
	}
	return printSolution(out, in, sol, cfg.solver, cfg.verbose, cfg.viz)
}

// batchConfig carries the flag values into runBatch.
type batchConfig struct {
	inPath   string
	solver   string
	seed     int64
	eps      float64
	timeout  time.Duration
	fallback bool
	workers  int
	verbose  bool
	bound    bool
}

// runBatch solves a multi-instance envelope on core.SolveBatch's worker
// pool and prints one line per item. Items fail (or, with -timeout and
// -fallback, degrade) independently; the batch always runs to completion.
func runBatch(ctx context.Context, out io.Writer, cfg batchConfig) error {
	ins, err := model.LoadBatchFile(cfg.inPath)
	if err != nil {
		return err
	}
	solver, err := core.Get(cfg.solver)
	if err != nil {
		return err
	}
	opt := core.Options{Seed: cfg.seed, SkipBound: !cfg.bound}
	if cfg.eps > 0 {
		opt.Knapsack = knapsack.Options{ForceApprox: true, Eps: cfg.eps}
	}
	start := time.Now()
	results := core.SolveBatch(ctx, ins, solver, core.BatchOptions{
		Options:     opt,
		SolverName:  cfg.solver,
		Workers:     cfg.workers,
		ItemTimeout: cfg.timeout,
		Hedged:      cfg.timeout > 0 && cfg.fallback,
	})
	fmt.Fprintf(out, "batch      %s: %d instances, solver %s\n", cfg.inPath, len(ins), cfg.solver)
	var ok, failed, degraded int
	var total int64
	for i, res := range results {
		in := ins[i]
		if res.Err != nil {
			failed++
			fmt.Fprintf(out, "[%d] %-20s ERROR: %v\n", i, in.Name, res.Err)
			continue
		}
		ok++
		sol := res.Solution
		total += sol.Profit
		status := ""
		if sol.Degraded {
			degraded++
			status = fmt.Sprintf(" DEGRADED(%s→%s)", sol.FallbackReason, sol.SolverUsed)
		}
		fmt.Fprintf(out, "[%d] %-20s profit=%-8d served=%d/%d in %v%s\n",
			i, in.Name, sol.Profit, sol.Assignment.ServedCount(), in.N(),
			res.Elapsed.Round(time.Microsecond), status)
		if cfg.verbose {
			load := sol.Assignment.Load(in)
			for j, a := range in.Antennas {
				fmt.Fprintf(out, "    antenna %2d  α=%7.2f° ρ=%6.2f° load %d/%d\n",
					j, geom.Degrees(sol.Assignment.Orientation[j]), geom.Degrees(a.Rho),
					load[j], a.Capacity)
			}
		}
	}
	fmt.Fprintf(out, "total      profit=%d ok=%d failed=%d degraded=%d in %v\n",
		total, ok, failed, degraded, time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		return fmt.Errorf("%d of %d batch items failed", failed, len(ins))
	}
	if degraded > 0 {
		return &degradedError{
			solverUsed: "greedy",
			reason:     "batch",
			detail:     fmt.Sprintf("%d of %d batch items served by the fallback", degraded, len(ins)),
		}
	}
	return nil
}
