package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func writeTestInstance(t *testing.T) string {
	t.Helper()
	in := gen.MustGenerate(gen.Config{
		Family: gen.Hotspot, Variant: model.Sectors, Seed: 7, N: 25, M: 2,
	})
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := model.SaveFile(path, in); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSolvesInstance(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-solver", "localsearch", "-v"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"instance", "localsearch", "served", "antenna  0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunViz(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-viz"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "B") || !strings.Contains(out.String(), "[0]") {
		t.Errorf("viz output missing plot or legend:\n%s", out.String())
	}
}

func TestRunEpsForcesFPTAS(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-eps", "0.2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "greedy") {
		t.Errorf("output missing solver name:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("missing -in must error")
	}
	if err := run(context.Background(), []string{"-in", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing file must error")
	}
	path := writeTestInstance(t)
	if err := run(context.Background(), []string{"-in", path, "-solver", "bogus"}, &out); err == nil {
		t.Error("unknown solver must error")
	}
	if err := run(context.Background(), []string{"-bogusflag"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
}
