package main

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func writeTestInstance(t *testing.T) string {
	t.Helper()
	in := gen.MustGenerate(gen.Config{
		Family: gen.Hotspot, Variant: model.Sectors, Seed: 7, N: 25, M: 2,
	})
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := model.SaveFile(path, in); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSolvesInstance(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-solver", "localsearch", "-v"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"instance", "localsearch", "served", "antenna  0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunViz(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-viz"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "B") || !strings.Contains(out.String(), "[0]") {
		t.Errorf("viz output missing plot or legend:\n%s", out.String())
	}
}

func TestRunEpsForcesFPTAS(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-eps", "0.2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "greedy") {
		t.Errorf("output missing solver name:\n%s", out.String())
	}
}

func TestRunTimeoutFallbackDegrades(t *testing.T) {
	core.Register("test-cli-hang", func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		<-ctx.Done()
		return model.Solution{}, ctx.Err()
	})
	path := writeTestInstance(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-in", path, "-solver", "test-cli-hang", "-timeout", "50ms"}, &out)
	if err == nil {
		t.Fatal("degraded run must return the degraded sentinel error")
	}
	var de *degradedError
	if !errors.As(err, &de) {
		t.Fatalf("error %T %v, want *degradedError (exit code %d)", err, err, exitDegraded)
	}
	if de.solverUsed != "greedy" {
		t.Errorf("degraded error names fallback %q, want greedy", de.solverUsed)
	}
	if !strings.Contains(err.Error(), "greedy") {
		t.Errorf("stderr note %q does not name the fallback solver", err)
	}
	// The degraded solution is still printed in full.
	for _, want := range []string{"solution", "degraded", "greedy", "served"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("degraded output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunTimeoutNoFallbackErrorsHard(t *testing.T) {
	core.Register("test-cli-hang2", func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		<-ctx.Done()
		return model.Solution{}, ctx.Err()
	})
	path := writeTestInstance(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-in", path, "-solver", "test-cli-hang2", "-timeout", "50ms", "-fallback=false"}, &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded with -fallback=false", err)
	}
	var de *degradedError
	if errors.As(err, &de) {
		t.Error("hard-timeout error must not be the degraded sentinel")
	}
}

func TestRunTimeoutFastSolverStaysFull(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-solver", "greedy", "-timeout", "30s"}, &out); err != nil {
		t.Fatalf("fast solve under a generous -timeout must exit clean: %v", err)
	}
	if strings.Contains(out.String(), "degraded") {
		t.Errorf("healthy solve printed a degraded note:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("missing -in must error")
	}
	if err := run(context.Background(), []string{"-in", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing file must error")
	}
	path := writeTestInstance(t)
	if err := run(context.Background(), []string{"-in", path, "-solver", "bogus"}, &out); err == nil {
		t.Error("unknown solver must error")
	}
	if err := run(context.Background(), []string{"-bogusflag"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
}
