package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func writeTestInstance(t *testing.T) string {
	t.Helper()
	in := gen.MustGenerate(gen.Config{
		Family: gen.Hotspot, Variant: model.Sectors, Seed: 7, N: 25, M: 2,
	})
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := model.SaveFile(path, in); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSolvesInstance(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-solver", "localsearch", "-v"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"instance", "localsearch", "served", "antenna  0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBoundFlag(t *testing.T) {
	path := writeTestInstance(t)
	var withBound, without bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-solver", "baseline"}, &withBound); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(context.Background(), []string{"-in", path, "-solver", "baseline", "-bound=false"}, &without); err != nil {
		t.Fatalf("run -bound=false: %v", err)
	}
	if !strings.Contains(withBound.String(), "of bound") {
		t.Errorf("default run missing the bound report:\n%s", withBound.String())
	}
	if strings.Contains(without.String(), "of bound") {
		t.Errorf("-bound=false still reports a bound:\n%s", without.String())
	}
}

func TestRunViz(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-viz"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "B") || !strings.Contains(out.String(), "[0]") {
		t.Errorf("viz output missing plot or legend:\n%s", out.String())
	}
}

func TestRunEpsForcesFPTAS(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-eps", "0.2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "greedy") {
		t.Errorf("output missing solver name:\n%s", out.String())
	}
}

func TestRunTimeoutFallbackDegrades(t *testing.T) {
	core.Register("test-cli-hang", func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		<-ctx.Done()
		return model.Solution{}, ctx.Err()
	})
	path := writeTestInstance(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-in", path, "-solver", "test-cli-hang", "-timeout", "50ms"}, &out)
	if err == nil {
		t.Fatal("degraded run must return the degraded sentinel error")
	}
	var de *degradedError
	if !errors.As(err, &de) {
		t.Fatalf("error %T %v, want *degradedError (exit code %d)", err, err, exitDegraded)
	}
	if de.solverUsed != "greedy" {
		t.Errorf("degraded error names fallback %q, want greedy", de.solverUsed)
	}
	if !strings.Contains(err.Error(), "greedy") {
		t.Errorf("stderr note %q does not name the fallback solver", err)
	}
	// The degraded solution is still printed in full.
	for _, want := range []string{"solution", "degraded", "greedy", "served"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("degraded output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunTimeoutNoFallbackErrorsHard(t *testing.T) {
	core.Register("test-cli-hang2", func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		<-ctx.Done()
		return model.Solution{}, ctx.Err()
	})
	path := writeTestInstance(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-in", path, "-solver", "test-cli-hang2", "-timeout", "50ms", "-fallback=false"}, &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded with -fallback=false", err)
	}
	var de *degradedError
	if errors.As(err, &de) {
		t.Error("hard-timeout error must not be the degraded sentinel")
	}
}

func TestRunTimeoutFastSolverStaysFull(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-solver", "greedy", "-timeout", "30s"}, &out); err != nil {
		t.Fatalf("fast solve under a generous -timeout must exit clean: %v", err)
	}
	if strings.Contains(out.String(), "degraded") {
		t.Errorf("healthy solve printed a degraded note:\n%s", out.String())
	}
}

// writeTestBatch saves a batch envelope of small named instances.
func writeTestBatch(t *testing.T, names ...string) string {
	t.Helper()
	ins := make([]*model.Instance, len(names))
	for k, name := range names {
		in := gen.MustGenerate(gen.Config{
			Family: gen.Uniform, Variant: model.Sectors, Seed: int64(20 + k), N: 12, M: 2,
		})
		in.Name = name
		ins[k] = in
	}
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := model.SaveBatchFile(path, ins); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBatchSolvesEnvelope(t *testing.T) {
	path := writeTestBatch(t, "alpha", "beta", "gamma")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-batch", "-in", path, "-workers", "2", "-v"}, &out); err != nil {
		t.Fatalf("run -batch: %v\n%s", err, out.String())
	}
	for _, want := range []string{"[0] alpha", "[1] beta", "[2] gamma", "profit=", "total", "ok=3 failed=0", "antenna"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("batch output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunBatchFailedItemExitsNonzero: one failing item fails the run (exit
// 1 in main) while the other items still print their solutions.
func TestRunBatchFailedItemExitsNonzero(t *testing.T) {
	core.Register("test-batch-cli-fail", func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		if in.Name == "bad" {
			return model.Solution{}, errors.New("injected item failure")
		}
		return core.SolveGreedy(ctx, in, opt)
	})
	defer core.Unregister("test-batch-cli-fail")
	path := writeTestBatch(t, "good", "bad")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-batch", "-in", path, "-solver", "test-batch-cli-fail"}, &out)
	if err == nil {
		t.Fatal("batch with a failed item must error")
	}
	var de *degradedError
	if errors.As(err, &de) {
		t.Error("a hard item failure must not exit with the degraded code")
	}
	if !strings.Contains(out.String(), "ERROR") || !strings.Contains(out.String(), "[0] good") {
		t.Errorf("batch output missing the failure line or the healthy item:\n%s", out.String())
	}
}

// TestRunBatchTimeoutFallbackDegrades: per-item deadlines with the default
// -fallback route failing items to the safety net and exit with the
// degraded sentinel, mirroring the single-solve contract.
func TestRunBatchTimeoutFallbackDegrades(t *testing.T) {
	core.Register("test-batch-cli-hang", func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		<-ctx.Done()
		return model.Solution{}, ctx.Err()
	})
	defer core.Unregister("test-batch-cli-hang")
	path := writeTestBatch(t, "one", "two")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-batch", "-in", path, "-solver", "test-batch-cli-hang", "-timeout", "50ms"}, &out)
	var de *degradedError
	if !errors.As(err, &de) {
		t.Fatalf("error %T %v, want *degradedError", err, err)
	}
	if !strings.Contains(out.String(), "DEGRADED") || !strings.Contains(out.String(), "degraded=2") {
		t.Errorf("batch output missing degraded markers:\n%s", out.String())
	}
}

func TestRunBatchRejectsViz(t *testing.T) {
	path := writeTestBatch(t, "only")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-batch", "-viz", "-in", path}, &out); err == nil {
		t.Error("-batch with -viz must error")
	}
}

func TestRunBatchRejectsSingleEnvelope(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-batch", "-in", path}, &out); err == nil {
		t.Error("-batch on a single-instance envelope must error")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("missing -in must error")
	}
	if err := run(context.Background(), []string{"-in", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing file must error")
	}
	path := writeTestInstance(t)
	if err := run(context.Background(), []string{"-in", path, "-solver", "bogus"}, &out); err == nil {
		t.Error("unknown solver must error")
	}
	if err := run(context.Background(), []string{"-bogusflag"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
}

// fakeDaemon solves /solve requests in-process with the greedy solver,
// speaking sectord's wire format. profitSkew shifts the claimed profit to
// simulate a lying daemon; failFirst makes the first request shed with 503.
func fakeDaemon(t *testing.T, profitSkew int64, failFirst bool) *httptest.Server {
	t.Helper()
	var calls atomic.Int64
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failFirst && calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"shedding"}`, http.StatusServiceUnavailable)
			return
		}
		var req struct {
			Solver   string          `json:"solver"`
			Seed     *int64          `json:"seed"`
			Instance *model.Instance `json:"instance"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, `{"error":"bad body"}`, http.StatusBadRequest)
			return
		}
		if req.Instance == nil {
			http.Error(w, `{"error":"bad instance"}`, http.StatusBadRequest)
			return
		}
		req.Instance.Normalize()
		solver, err := core.Get(req.Solver)
		if err != nil {
			http.Error(w, `{"error":"unknown solver"}`, http.StatusBadRequest)
			return
		}
		var seed int64 = 1
		if req.Seed != nil {
			seed = *req.Seed
		}
		sol, err := solver(r.Context(), req.Instance, core.Options{Seed: seed, SkipBound: true})
		if err != nil {
			http.Error(w, `{"error":"solve failed"}`, http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"solver": req.Solver, "algorithm": sol.Algorithm,
			"profit":      sol.Profit + profitSkew,
			"orientation": sol.Assignment.Orientation,
			"owner":       sol.Assignment.Owner,
			"elapsed_ms":  0.1,
		})
	}))
}

func TestRunServerSolvesRemotely(t *testing.T) {
	path := writeTestInstance(t)
	ts := fakeDaemon(t, 0, true)
	defer ts.Close()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-server", ts.URL, "-v"}, &out); err != nil {
		t.Fatalf("remote run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"remote", "attempts=2", "instance", "solution", "served", "antenna  0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("remote output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunServerRejectsTamperedAnswer pins the local re-verification: a
// daemon whose profit claim does not match its own assignment is an error,
// never a printed report.
func TestRunServerRejectsTamperedAnswer(t *testing.T) {
	path := writeTestInstance(t)
	ts := fakeDaemon(t, 1, false)
	defer ts.Close()
	var out bytes.Buffer
	err := run(context.Background(), []string{"-in", path, "-server", ts.URL}, &out)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("tampered profit must fail local verification, got %v", err)
	}
}

func TestRunServerFlagConflicts(t *testing.T) {
	path := writeTestInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-batch", "-in", path, "-server", "http://x"}, &out); err == nil {
		t.Error("-batch with -server must error")
	}
	if err := run(context.Background(), []string{"-in", path, "-server", "http://x", "-eps", "0.1"}, &out); err == nil {
		t.Error("-eps with -server must error")
	}
}
