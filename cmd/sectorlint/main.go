// Command sectorlint runs the repository's solver-invariant analyzers —
// ctxloop, anglenorm, floateq, optcover, provenance — over the module.
//
// Usage:
//
//	go run ./cmd/sectorlint ./...
//	go run ./cmd/sectorlint -list
//	go run ./cmd/sectorlint -only ctxloop,provenance ./internal/core/...
//
// Findings are suppressed per line with a mandatory reason:
//
//	x := seam() //sectorlint:ignore anglenorm canonical-order sort needs the raw value
//
// Exit status: 0 clean, 1 findings, 2 load/usage errors.
package main

import (
	"os"

	"sectorpack/internal/analysis/sectorlint"
)

func main() {
	os.Exit(sectorlint.Main(os.Stdout, os.Stderr, os.Args[1:]))
}
