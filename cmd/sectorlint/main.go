// Command sectorlint runs the repository's solver-invariant analyzers over
// the module. The intra-procedural wave — ctxloop, anglenorm, floateq,
// optcover, provenance — is joined by the interprocedural wave built on
// cross-package facts and the module call graph: lockdiscipline (fields
// annotated `// guarded by mu` are only touched holding the guard),
// fsyncorder (durable write paths reach fsync; Journal/File/FS errors are
// never statement-discarded), retryidem (retry loops only re-send
// idempotent routes), and expvarmono (`// monotonic` counters never rewind).
//
// Usage:
//
//	go run ./cmd/sectorlint ./...
//	go run ./cmd/sectorlint -list
//	go run ./cmd/sectorlint -only lockdiscipline,fsyncorder ./internal/daemon/...
//	go run ./cmd/sectorlint -include-tests -only ctxloop,floateq ./...
//	go run ./cmd/sectorlint -json ./...
//	go run ./cmd/sectorlint -sarif ./... > sectorlint.sarif
//
// Findings are suppressed per line with a mandatory reason:
//
//	x := seam() //sectorlint:ignore anglenorm canonical-order sort needs the raw value
//
// -stale-ignores additionally reports suppression comments that no longer
// suppress anything (CI runs with it on, so the ignore inventory cannot
// rot). -json emits a flat findings array; -sarif emits a SARIF 2.1.0 log
// for code-scanning consumers. Helpers whose contract is "caller must hold
// the lock" declare it with a doc-comment annotation the call-graph pass
// verifies at every call site:
//
//	//sectorlint:locked Cache.mu
//	func (c *Cache) putLocked(...) { ... }
//
// Exit status: 0 clean, 1 findings, 2 load/usage errors.
package main

import (
	"os"

	"sectorpack/internal/analysis/sectorlint"
)

func main() {
	os.Exit(sectorlint.Main(os.Stdout, os.Stderr, os.Args[1:]))
}
