// Tests for the sectorload command front: flag validation, report
// emission, and the SLO gate's exit contract.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sectorpack/internal/daemon"
	"sectorpack/internal/loadgen"
)

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out, logw bytes.Buffer
	for _, args := range [][]string{
		{},                                    // -url is required
		{"-url", "http://x", "-mode", "open"}, // open loop without -rps
		{"-url", "http://x", "-mode", "spiral"},
		{"-badflag"},
	} {
		if err := run(ctx, args, &out, &logw); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

func TestRunEmitsReportAndPassesSLO(t *testing.T) {
	s := daemon.NewServer(daemon.Config{Seed: 1, MaxInflight: 16, ShardName: "s0"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var out, logw bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL,
		"-duration", "300ms",
		"-workers", "2",
		"-pool", "4",
		"-verify", ts.URL,
		"-verify-every", "2",
		"-report", reportPath,
	}, &out, &logw)
	if err != nil {
		t.Fatalf("run against a healthy daemon failed: %v", err)
	}
	var fromStdout, fromFile loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &fromStdout); err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, out.String())
	}
	blob, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("-report file missing: %v", err)
	}
	if err := json.Unmarshal(blob, &fromFile); err != nil {
		t.Fatalf("-report file is not a report: %v", err)
	}
	if fromStdout.Requests == 0 || fromStdout.Requests != fromFile.Requests {
		t.Errorf("stdout reports %d requests, file %d; want equal and non-zero", fromStdout.Requests, fromFile.Requests)
	}
	if fromFile.Verify == nil || fromFile.Verify.Checked == 0 {
		t.Errorf("-verify was set but no verification ran: %+v", fromFile.Verify)
	}
	if !strings.Contains(logw.String(), "SLO ok") {
		t.Errorf("passing run did not announce the SLO verdict: %q", logw.String())
	}
}

func TestRunFailsSLOOnServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	var out, logw bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL,
		"-duration", "200ms",
		"-workers", "2",
		"-pool", "2",
		"-batch-every", "0",
	}, &out, &logw)
	if err == nil {
		t.Fatal("a 5xx-only server passed the default SLO; non-shed failures must gate")
	}
	if !strings.Contains(err.Error(), "SLO violated") {
		t.Errorf("failure is not an SLO verdict: %v", err)
	}
}
