// Command sectorload drives a sectord or sectorproxy endpoint with a
// seeded, mixed-tier workload and reports latency percentiles,
// shed/degraded/error rates, and per-shard cache hit ratios as JSON. With
// SLO flags set it doubles as a gate: the exit status says whether the
// fleet met its objectives, the same contract sectorbench -compare
// provides for benchmark regressions.
//
// Typical fleet smoke, two backends behind a proxy:
//
//	sectorload -url http://localhost:8378 -mode open -rps 80 -duration 15s \
//	    -verify http://localhost:8377 -max-p99 2000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sectorpack/internal/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sectorload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out, logw io.Writer) error {
	fs := flag.NewFlagSet("sectorload", flag.ContinueOnError)
	fs.SetOutput(logw)
	url := fs.String("url", "", "endpoint under test (required), e.g. http://localhost:8378")
	mode := fs.String("mode", "closed", "loop discipline: closed (fixed workers) or open (fixed arrival rate)")
	workers := fs.Int("workers", 8, "closed-loop concurrency / open-loop in-flight cap")
	rps := fs.Float64("rps", 0, "open-loop arrival rate (required for -mode open)")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	solvers := fs.String("solvers", "auto", "comma-separated solver names cycled across requests")
	seed := fs.Int64("seed", 1, "workload seed (pool contents and interleaving)")
	pool := fs.Int("pool", 32, "distinct request bodies; repeats beyond this exercise the cache")
	batchEvery := fs.Int("batch-every", 8, "every Nth pool slot is a /solve/batch (0 = none)")
	batchSize := fs.Int("batch-size", 4, "instances per batch")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	verify := fs.String("verify", "", "direct-backend URL to replay sampled solves against; any answer mismatch fails the run")
	verifyEvery := fs.Int("verify-every", 8, "verification sampling stride")
	reportPath := fs.String("report", "", "also write the JSON report to this file")
	maxP99 := fs.Float64("max-p99", 0, "SLO: fail if OK-request p99 exceeds this (ms, 0 = no gate)")
	maxErr := fs.Float64("max-error-rate", 0, "SLO: allowed (5xx+transport)/requests; 0 means any non-shed failure fails")
	maxShed := fs.Float64("max-shed-rate", 0, "SLO: fail if 429 rate exceeds this (0 = no gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	var names []string
	for _, s := range strings.Split(*solvers, ",") {
		if s = strings.TrimSpace(s); s != "" {
			names = append(names, s)
		}
	}
	report, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     strings.TrimRight(*url, "/"),
		Mode:        loadgen.Mode(*mode),
		Workers:     *workers,
		RPS:         *rps,
		Duration:    *duration,
		Solvers:     names,
		Seed:        *seed,
		PoolSize:    *pool,
		BatchEvery:  *batchEvery,
		BatchSize:   *batchSize,
		Timeout:     *timeout,
		VerifyBase:  strings.TrimRight(*verify, "/"),
		VerifyEvery: *verifyEvery,
	})
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if _, err := out.Write(blob); err != nil {
		return err
	}
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, blob, 0o644); err != nil {
			return err
		}
	}
	violations := report.Check(loadgen.SLO{MaxP99MS: *maxP99, MaxErrRate: *maxErr, MaxShed: *maxShed})
	if len(violations) > 0 {
		return fmt.Errorf("SLO violated:\n  %s", strings.Join(violations, "\n  "))
	}
	fmt.Fprintf(logw, "sectorload: %d requests, p99 %.1fms, shed %.2f%%, SLO ok\n",
		report.Requests, report.LatencyOK.P99MS, report.ShedRate*100)
	return nil
}
