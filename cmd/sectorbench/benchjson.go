package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"sectorpack"
	"sectorpack/internal/cache"
)

// benchReport is the machine-readable summary written by -json: the wall
// time of every experiment run plus allocation-aware micro-benchmarks of
// the greedy hot path. Checked-in BENCH_<date>.json files are the
// performance baselines regressions are judged against.
type benchReport struct {
	Date        string       `json:"date"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Quick       bool         `json:"quick"`
	Experiments []expTiming  `json:"experiments"`
	Micro       []microBench `json:"micro"`
}

type expTiming struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
}

type microBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// microBenchmarks measures the greedy solver at the bench_test.go sizes via
// testing.Benchmark, so the JSON numbers are directly comparable to
// `go test -bench=BenchmarkGreedy -benchmem`, plus the solve-cache hit path
// at n=200 (fingerprint + lookup on a warm cache) — read it against
// greedy/n200 for what a repeated solve saves.
func microBenchmarks() []microBench {
	record := func(name string, r testing.BenchmarkResult) microBench {
		return microBench{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	benchInstance := func(n int) *sectorpack.Instance {
		return sectorpack.MustGenerate(sectorpack.GenConfig{
			Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
			Seed: 42, N: n, M: 3,
		})
	}
	opt := sectorpack.Options{Seed: 1, SkipBound: true}

	var out []microBench
	for _, n := range []int{50, 200, 800} {
		in := benchInstance(n)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sectorpack.Solve(context.Background(), "greedy", in, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, record(fmt.Sprintf("greedy/n%d", n), r))
	}

	in := benchInstance(200)
	c := cache.New(0)
	fp, err := cache.NewFingerprint(in, opt, "greedy")
	if err != nil {
		panic(err) // static inputs; cannot fail
	}
	sol, err := sectorpack.Solve(context.Background(), "greedy", in, opt)
	if err != nil {
		panic(err)
	}
	//sectorlint:ignore provenance sol comes from a plain non-hedged Solve above, which can never return a degraded solution
	c.Put(fp, sol)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fp, err := cache.NewFingerprint(in, opt, "greedy")
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := c.Get(fp); !ok {
				b.Fatal("warm cache missed")
			}
		}
	})
	return append(out, record("cachehit/n200", r))
}

// loadBenchReport reads a BENCH_<date>.json written by writeBenchJSON.
func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return &rep, nil
}

// compareTolerance gates -compare: a micro benchmark more than 25% worse
// than its baseline fails the run.
const compareTolerance = 1.25

// benchRatio is current/baseline, treating a zero baseline as regressed
// only when the current value is nonzero.
func benchRatio(cur, old float64) float64 {
	if old <= 0 {
		if cur <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return cur / old
}

// compareBenchmarks re-runs the micro benchmarks and gates them against a
// committed baseline report, returning an error (→ non-zero exit) when any
// gated measurement regressed past compareTolerance. metric picks which
// measurements gate: allocs/op is deterministic and comparable across
// machines (the CI setting), ns/op only means something on the machine that
// recorded the baseline, both gates on either. Benchmarks without a
// baseline entry are reported but never fail — that is how a new benchmark
// lands before its baseline is regenerated.
func compareBenchmarks(out io.Writer, baselinePath, metric string) error {
	switch metric {
	case "allocs", "ns", "both":
	default:
		return fmt.Errorf("invalid -compare-metric %q (want allocs, ns, or both)", metric)
	}
	base, err := loadBenchReport(baselinePath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "comparing micro benchmarks against %s (%s, %s), metric=%s, tolerance=%.0f%%\n",
		baselinePath, base.Date, base.GoVersion, metric, (compareTolerance-1)*100)
	return compareMicro(out, base, microBenchmarks(), metric)
}

// compareMicro is the gate itself, split from compareBenchmarks so the
// pass/fail logic is testable without re-running real benchmarks.
func compareMicro(out io.Writer, base *benchReport, current []microBench, metric string) error {
	baseline := make(map[string]microBench, len(base.Micro))
	for _, m := range base.Micro {
		baseline[m.Name] = m
	}
	var regressions []string
	for _, cur := range current {
		old, ok := baseline[cur.Name]
		if !ok {
			fmt.Fprintf(out, "%-16s ns/op %10.0f  allocs/op %6d  (no baseline entry, not gated)\n",
				cur.Name, cur.NsPerOp, cur.AllocsPerOp)
			continue
		}
		nsRatio := benchRatio(cur.NsPerOp, old.NsPerOp)
		allocRatio := benchRatio(float64(cur.AllocsPerOp), float64(old.AllocsPerOp))
		fmt.Fprintf(out, "%-16s ns/op %10.0f -> %10.0f (%.2fx)  allocs/op %6d -> %6d (%.2fx)\n",
			cur.Name, old.NsPerOp, cur.NsPerOp, nsRatio, old.AllocsPerOp, cur.AllocsPerOp, allocRatio)
		if (metric == "ns" || metric == "both") && nsRatio > compareTolerance {
			regressions = append(regressions, fmt.Sprintf("%s ns/op %.2fx", cur.Name, nsRatio))
		}
		if (metric == "allocs" || metric == "both") && allocRatio > compareTolerance {
			regressions = append(regressions, fmt.Sprintf("%s allocs/op %.2fx", cur.Name, allocRatio))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchmark regression past %.0f%%: %s", (compareTolerance-1)*100, strings.Join(regressions, "; "))
	}
	fmt.Fprintln(out, "benchmark compare passed")
	return nil
}

// writeBenchJSON writes BENCH_<date>.json into dir and returns its path.
func writeBenchJSON(dir string, quick bool, exps []expTiming) (string, error) {
	rep := benchReport{
		Date:        time.Now().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       quick,
		Experiments: exps,
		Micro:       microBenchmarks(),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+rep.Date+".json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
