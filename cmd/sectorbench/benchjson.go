package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"sectorpack"
	"sectorpack/internal/angular"
	"sectorpack/internal/cache"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/session"
)

// benchReport is the machine-readable summary written by -json: the wall
// time of every experiment run plus allocation-aware micro-benchmarks of
// the greedy hot path and the columnar-engine tiers. Checked-in
// BENCH_<date>.json files are the performance baselines regressions are
// judged against. NumCPU records the physical parallelism actually
// available when the report was taken — a "parallel" entry measured on a
// single-core box is oversubscription, not speedup, and comparisons across
// reports must account for it.
type benchReport struct {
	Date        string       `json:"date"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Quick       bool         `json:"quick"`
	Experiments []expTiming  `json:"experiments"`
	Micro       []microBench `json:"micro"`
}

type expTiming struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
}

// microBench is one measurement. GOMAXPROCS and Workers record the
// parallelism the entry ran with (Workers is the angular worker-pool cap in
// effect, which tier entries pin explicitly); Path says which code path
// that implies — "parallel" when the angular fan-outs were allowed more
// than one worker, "scalar" when pinned to one.
type microBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Workers     int     `json:"workers"`
	Path        string  `json:"path"`
}

// record packages a benchmark result with the parallelism it ran under.
func record(name string, workers int, r testing.BenchmarkResult) microBench {
	path := "scalar"
	if workers > 1 {
		path = "parallel"
	}
	return microBench{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		Path:        path,
	}
}

// tierWorkers is the worker cap the explicit "parallel" tier entries pin,
// matching the GOMAXPROCS>=8 configuration the speedup targets are stated
// at. On a smaller box the entry still runs (the pool oversubscribes);
// NumCPU in the report header says how to read it.
const tierWorkers = 8

// microBenchmarks measures the greedy solver at the bench_test.go sizes via
// testing.Benchmark (directly comparable to `go test -bench=BenchmarkGreedy
// -benchmem`), the solve-cache hit path at n=200, and the columnar-engine
// tiers: prewarm (sweep construction over the shared view) at n=100k pinned
// scalar and pinned parallel, plus a full baseline solve on the n=100k
// tier. With big, the n=1M tier is added — engine prewarm and the baseline
// solver, the two paths designed to scale that far. Candidate-enumerating
// heuristics are not run at the tiers: their Dantzig bound pass is
// O(eligible²) per antenna, which at n>=100k is hours, not seconds.
func microBenchmarks(big bool) []microBench {
	benchInstance := func(n int) *sectorpack.Instance {
		return sectorpack.MustGenerate(sectorpack.GenConfig{
			Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
			Seed: 42, N: n, M: 3,
		})
	}
	opt := sectorpack.Options{Seed: 1, SkipBound: true}

	var out []microBench
	for _, n := range []int{50, 200, 800} {
		in := benchInstance(n)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sectorpack.Solve(context.Background(), "greedy", in, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, record(fmt.Sprintf("greedy/n%d", n), angular.Workers(), r))
	}

	in := benchInstance(200)
	c := cache.New(0)
	fp, err := cache.NewFingerprint(in, opt, "greedy")
	if err != nil {
		panic(err) // static inputs; cannot fail
	}
	sol, err := sectorpack.Solve(context.Background(), "greedy", in, opt)
	if err != nil {
		panic(err)
	}
	//sectorlint:ignore provenance sol comes from a plain non-hedged Solve above, which can never return a degraded solution
	c.Put(fp, sol)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fp, err := cache.NewFingerprint(in, opt, "greedy")
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := c.Get(fp); !ok {
				b.Fatal("warm cache missed")
			}
		}
	})
	out = append(out, record("cachehit/n200", angular.Workers(), r))

	out = append(out, tierBenchmarks(big)...)
	return out
}

// tierInstance generates the named gen.Tier instance.
func tierInstance(name string) *sectorpack.Instance {
	cfg, err := gen.Tier(name)
	if err != nil {
		panic(err) // static tier names; cannot fail
	}
	return sectorpack.MustGenerate(cfg)
}

// benchPrewarm measures engine construction + Prewarm (the columnar sort,
// per-antenna sweep gathers, and density orders) at the given worker cap.
func benchPrewarm(name string, in *sectorpack.Instance, workers int) microBench {
	prev := angular.SetMaxWorkers(workers)
	defer angular.SetMaxWorkers(prev)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := angular.NewEngine(in)
			if err := eng.Prewarm(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	return record(name, workers, r)
}

// tierBenchmarks runs the large-instance entries.
func tierBenchmarks(big bool) []microBench {
	var out []microBench
	in100k := tierInstance("100k")
	out = append(out,
		benchPrewarm("engine/n100k/scalar", in100k, 1),
		benchPrewarm("engine/n100k/parallel", in100k, tierWorkers),
	)
	opt := sectorpack.Options{Seed: 1, SkipBound: true}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sectorpack.Solve(context.Background(), "baseline", in100k, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	out = append(out, record("baseline/n100k", angular.Workers(), r))
	out = append(out, sessionBenchmarks()...)
	if !big {
		return out
	}
	in1m := tierInstance("1m")
	out = append(out, benchPrewarm("engine/n1m/parallel", in1m, tierWorkers))
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sectorpack.Solve(context.Background(), "baseline", in1m, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	out = append(out, record("baseline/n1m", angular.Workers(), r))
	return out
}

// sessionBenchmarks measures the delta-session claim on the 100k-churn
// tier: the cost of absorbing one localized 1% churn step through a warm
// session.Apply, against the from-scratch greedy solve (engine build
// included) a stateless client would run on the churned instance. Both run
// the same solver with the same options, so the entries are directly
// comparable; the acceptance target is delta >= 5x faster than scratch.
func sessionBenchmarks() []microBench {
	cfg, err := gen.Tier("100k-churn")
	if err != nil {
		panic(err) // static tier name; cannot fail
	}
	tr := gen.MustGenerateTrace(gen.ChurnConfig{Base: cfg, Localized: true})
	opt := sectorpack.Options{Seed: 1, SkipBound: true}

	// From scratch: materialize the first churned state once, then time the
	// full stateless pipeline — engine construction, every sweep, and the
	// greedy solve — that a client without a session pays per step.
	churned, err := model.ApplyDelta(tr.Instance, tr.Deltas[0])
	if err != nil {
		panic(err) // GenerateTrace validated the delta; cannot fail
	}
	var out []microBench
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sectorpack.Solve(context.Background(), "greedy", churned, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	out = append(out, record("session/scratch-n100k", angular.Workers(), r))

	// Delta path: a warm session absorbs the trace's churn steps one Apply
	// per iteration. Each delta is only valid against the state it was
	// generated from, so when the trace runs out the session is rebuilt
	// from the base instance with the timer stopped — only Apply is timed.
	newSession := func(b *testing.B) *session.Session {
		s, err := session.New(context.Background(), tr.Instance,
			session.Options{Solver: "greedy", Core: opt})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.StopTimer()
		sess := newSession(b)
		idx := 0
		b.StartTimer()
		for i := 0; i < b.N; i++ {
			if idx == len(tr.Deltas) {
				b.StopTimer()
				sess = newSession(b)
				idx = 0
				b.StartTimer()
			}
			if _, err := sess.Apply(context.Background(), tr.Deltas[idx]); err != nil {
				b.Fatal(err)
			}
			idx++
		}
	})
	out = append(out, record("session/delta-n100k", angular.Workers(), r))
	return out
}

// loadBenchReport reads a BENCH_<date>.json written by writeBenchJSON.
func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return &rep, nil
}

// compareTolerance gates -compare: a micro benchmark more than 25% worse
// than its baseline fails the run.
const compareTolerance = 1.25

// benchRatio is current/baseline, treating a zero baseline as regressed
// only when the current value is nonzero.
func benchRatio(cur, old float64) float64 {
	if old <= 0 {
		if cur <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return cur / old
}

// compareBenchmarks re-runs the micro benchmarks and gates them against a
// committed baseline report, returning an error (→ non-zero exit) when any
// gated measurement regressed past compareTolerance. metric picks which
// measurements gate: allocs/op is deterministic and comparable across
// machines (the CI setting), ns/op only means something on the machine that
// recorded the baseline, both gates on either. A benchmark with no baseline
// entry fails the comparison — an ungated benchmark is a silent hole in the
// regression fence — unless allowMissing is set, which is how a new
// benchmark lands in the same change that introduces it, before the
// baseline is regenerated.
func compareBenchmarks(out io.Writer, baselinePath, metric string, big, allowMissing bool) error {
	switch metric {
	case "allocs", "ns", "both":
	default:
		return fmt.Errorf("invalid -compare-metric %q (want allocs, ns, or both)", metric)
	}
	base, err := loadBenchReport(baselinePath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "comparing micro benchmarks against %s (%s, %s), metric=%s, tolerance=%.0f%%\n",
		baselinePath, base.Date, base.GoVersion, metric, (compareTolerance-1)*100)
	return compareMicro(out, base, microBenchmarks(big), metric, allowMissing)
}

// compareMicro is the gate itself, split from compareBenchmarks so the
// pass/fail logic is testable without re-running real benchmarks.
func compareMicro(out io.Writer, base *benchReport, current []microBench, metric string, allowMissing bool) error {
	baseline := make(map[string]microBench, len(base.Micro))
	for _, m := range base.Micro {
		baseline[m.Name] = m
	}
	var regressions, missing []string
	for _, cur := range current {
		old, ok := baseline[cur.Name]
		if !ok {
			fmt.Fprintf(out, "%-22s ns/op %10.0f  allocs/op %8d  (no baseline entry)\n",
				cur.Name, cur.NsPerOp, cur.AllocsPerOp)
			missing = append(missing, cur.Name)
			continue
		}
		nsRatio := benchRatio(cur.NsPerOp, old.NsPerOp)
		allocRatio := benchRatio(float64(cur.AllocsPerOp), float64(old.AllocsPerOp))
		fmt.Fprintf(out, "%-22s ns/op %10.0f -> %10.0f (%.2fx)  allocs/op %8d -> %8d (%.2fx)\n",
			cur.Name, old.NsPerOp, cur.NsPerOp, nsRatio, old.AllocsPerOp, cur.AllocsPerOp, allocRatio)
		if (metric == "ns" || metric == "both") && nsRatio > compareTolerance {
			regressions = append(regressions, fmt.Sprintf("%s ns/op %.2fx", cur.Name, nsRatio))
		}
		if (metric == "allocs" || metric == "both") && allocRatio > compareTolerance {
			regressions = append(regressions, fmt.Sprintf("%s allocs/op %.2fx", cur.Name, allocRatio))
		}
	}
	if len(missing) > 0 && !allowMissing {
		return fmt.Errorf("no baseline entry for %s: regenerate the baseline with -json, or pass -compare-allow-missing to land the new benchmark first",
			strings.Join(missing, ", "))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchmark regression past %.0f%%: %s", (compareTolerance-1)*100, strings.Join(regressions, "; "))
	}
	fmt.Fprintln(out, "benchmark compare passed")
	return nil
}

// writeBenchJSON writes BENCH_<date>.json into dir and returns its path.
func writeBenchJSON(dir string, quick, big bool, exps []expTiming) (string, error) {
	rep := benchReport{
		Date:        time.Now().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Quick:       quick,
		Experiments: exps,
		Micro:       microBenchmarks(big),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+rep.Date+".json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
