package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"sectorpack"
)

// benchReport is the machine-readable summary written by -json: the wall
// time of every experiment run plus allocation-aware micro-benchmarks of
// the greedy hot path. Checked-in BENCH_<date>.json files are the
// performance baselines regressions are judged against.
type benchReport struct {
	Date        string       `json:"date"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Quick       bool         `json:"quick"`
	Experiments []expTiming  `json:"experiments"`
	Micro       []microBench `json:"micro"`
}

type expTiming struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
}

type microBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// microBenchmarks measures the greedy solver at the bench_test.go sizes via
// testing.Benchmark, so the JSON numbers are directly comparable to
// `go test -bench=BenchmarkGreedy -benchmem`.
func microBenchmarks() []microBench {
	var out []microBench
	for _, n := range []int{50, 200, 800} {
		in := sectorpack.MustGenerate(sectorpack.GenConfig{
			Family: sectorpack.Uniform, Variant: sectorpack.Sectors,
			Seed: 42, N: n, M: 3,
		})
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sectorpack.Solve(context.Background(), "greedy", in, sectorpack.Options{Seed: 1, SkipBound: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, microBench{
			Name:        fmt.Sprintf("greedy/n%d", n),
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

// writeBenchJSON writes BENCH_<date>.json into dir and returns its path.
func writeBenchJSON(dir string, quick bool, exps []expTiming) (string, error) {
	rep := benchReport{
		Date:        time.Now().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       quick,
		Experiments: exps,
		Micro:       microBenchmarks(),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+rep.Date+".json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
