package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, id := range []string{"E1", "E10"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
	if !strings.Contains(out.String(), "claim:") {
		t.Error("list should show claims")
	}
}

func TestRunSubsetQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "E1, E7"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Table E1") || !strings.Contains(out.String(), "Table E7") {
		t.Errorf("missing tables:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "completed in") {
		t.Error("missing timing lines")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment must error")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
}

func TestJSONExport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real micro-benchmarks")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "E1", "-json", dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one BENCH_<date>.json, got %v (%v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "E1" || rep.Experiments[0].WallMS <= 0 {
		t.Errorf("experiment timings = %+v", rep.Experiments)
	}
	if len(rep.Micro) != 9 {
		t.Fatalf("micro benches = %+v, want 9 (greedy n50/n200/n800 + cachehit/n200 + engine n100k scalar/parallel + baseline/n100k + session scratch/delta n100k)", rep.Micro)
	}
	if rep.NumCPU <= 0 {
		t.Errorf("report num_cpu = %d, want > 0", rep.NumCPU)
	}
	byName := map[string]microBench{}
	for _, m := range rep.Micro {
		if m.NsPerOp <= 0 || m.AllocsPerOp <= 0 {
			t.Errorf("degenerate micro bench %+v", m)
		}
		if m.Workers <= 0 || m.GOMAXPROCS <= 0 {
			t.Errorf("micro bench %s missing parallelism metadata: %+v", m.Name, m)
		}
		byName[m.Name] = m
	}
	// The pinned tier entries must record the path they pinned.
	if e := byName["engine/n100k/scalar"]; e.Path != "scalar" || e.Workers != 1 {
		t.Errorf("engine/n100k/scalar recorded path=%q workers=%d", e.Path, e.Workers)
	}
	if e := byName["engine/n100k/parallel"]; e.Path != "parallel" || e.Workers <= 1 {
		t.Errorf("engine/n100k/parallel recorded path=%q workers=%d", e.Path, e.Workers)
	}
	// The cached lookup must beat the fresh solve it short-circuits.
	hit, fresh := byName["cachehit/n200"], byName["greedy/n200"]
	if hit.Name == "" || fresh.Name == "" {
		t.Fatalf("missing cachehit/n200 or greedy/n200 in %+v", rep.Micro)
	}
	if hit.NsPerOp >= fresh.NsPerOp {
		t.Errorf("cache hit %.0f ns/op not faster than fresh greedy %.0f ns/op", hit.NsPerOp, fresh.NsPerOp)
	}
	// The delta-session claim: absorbing a 1% churn step through a warm
	// session must beat the stateless re-solve by at least 5x (the measured
	// ratio is ~8x, so the gate has headroom against machine noise).
	scratch, delta := byName["session/scratch-n100k"], byName["session/delta-n100k"]
	if scratch.Name == "" || delta.Name == "" {
		t.Fatalf("missing session/scratch-n100k or session/delta-n100k in %+v", rep.Micro)
	}
	if delta.NsPerOp*5 > scratch.NsPerOp {
		t.Errorf("session delta %.0f ns/op not 5x faster than from-scratch %.0f ns/op (%.1fx)",
			delta.NsPerOp, scratch.NsPerOp, scratch.NsPerOp/delta.NsPerOp)
	}
}

// TestCompareAgainstFreshBaseline: a report compared against itself passes,
// and re-running -exp none -compare against the just-written file exercises
// the full CLI path end to end.
func TestCompareAgainstFreshBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real micro-benchmarks")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-exp", "none", "-json", dir}, &out); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	if strings.Contains(out.String(), "Table") {
		t.Errorf("-exp none still ran experiments:\n%s", out.String())
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if len(matches) != 1 {
		t.Fatalf("expected one baseline, got %v", matches)
	}
	out.Reset()
	if err := run([]string{"-exp", "none", "-compare", matches[0], "-compare-metric", "allocs"}, &out); err != nil {
		t.Fatalf("compare against own baseline failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "benchmark compare passed") {
		t.Errorf("missing pass confirmation:\n%s", out.String())
	}
}

func TestCompareErrors(t *testing.T) {
	var out bytes.Buffer
	// Both checks happen before any benchmark runs, so these stay fast.
	if err := run([]string{"-exp", "none", "-compare", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing baseline file must error")
	}
	if err := run([]string{"-exp", "none", "-compare", "x.json", "-compare-metric", "bogus"}, &out); err == nil {
		t.Error("invalid -compare-metric must error")
	}
}

// TestCompareMicroGate drives the gate logic directly with synthetic
// measurements: regressions past 25% on the gated metric fail, improvements
// and new benchmarks never do.
func TestCompareMicroGate(t *testing.T) {
	base := &benchReport{Micro: []microBench{
		{Name: "greedy/n200", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "cachehit/n200", NsPerOp: 100, AllocsPerOp: 10},
	}}
	cases := []struct {
		name    string
		current []microBench
		metric  string
		wantErr bool
	}{
		{"identical passes", base.Micro, "both", false},
		{"within tolerance passes", []microBench{
			{Name: "greedy/n200", NsPerOp: 1200, AllocsPerOp: 120},
			{Name: "cachehit/n200", NsPerOp: 100, AllocsPerOp: 10},
		}, "both", false},
		{"ns regression fails on both", []microBench{
			{Name: "greedy/n200", NsPerOp: 1300, AllocsPerOp: 100},
			{Name: "cachehit/n200", NsPerOp: 100, AllocsPerOp: 10},
		}, "both", true},
		{"ns regression ignored under allocs", []microBench{
			{Name: "greedy/n200", NsPerOp: 9000, AllocsPerOp: 100},
			{Name: "cachehit/n200", NsPerOp: 100, AllocsPerOp: 10},
		}, "allocs", false},
		{"alloc regression fails under allocs", []microBench{
			{Name: "greedy/n200", NsPerOp: 1000, AllocsPerOp: 200},
			{Name: "cachehit/n200", NsPerOp: 100, AllocsPerOp: 10},
		}, "allocs", true},
		{"missing baseline entry fails", []microBench{
			{Name: "greedy/n200", NsPerOp: 1000, AllocsPerOp: 100},
			{Name: "cachehit/n200", NsPerOp: 100, AllocsPerOp: 10},
			{Name: "brandnew/n1", NsPerOp: 1e9, AllocsPerOp: 1 << 30},
		}, "both", true},
		{"improvement passes", []microBench{
			{Name: "greedy/n200", NsPerOp: 10, AllocsPerOp: 1},
			{Name: "cachehit/n200", NsPerOp: 10, AllocsPerOp: 1},
		}, "both", false},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		err := compareMicro(&out, base, tc.current, tc.metric, false)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v\n%s", tc.name, err, tc.wantErr, out.String())
		}
	}

	// The missing-entry failure must name the benchmark and be overridable.
	withNew := []microBench{
		{Name: "greedy/n200", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "cachehit/n200", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "brandnew/n1", NsPerOp: 1e9, AllocsPerOp: 1 << 30},
	}
	var out bytes.Buffer
	err := compareMicro(&out, base, withNew, "both", false)
	if err == nil || !strings.Contains(err.Error(), "brandnew/n1") {
		t.Errorf("missing-entry error should name the benchmark, got %v", err)
	}
	out.Reset()
	if err := compareMicro(&out, base, withNew, "both", true); err != nil {
		t.Errorf("allowMissing should tolerate the new benchmark, got %v", err)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "E1", "-csv", dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "E1_table1.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(data), "family,n,m") {
		t.Errorf("csv header missing:\n%s", data)
	}
}
