package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, id := range []string{"E1", "E10"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
	if !strings.Contains(out.String(), "claim:") {
		t.Error("list should show claims")
	}
}

func TestRunSubsetQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "E1, E7"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Table E1") || !strings.Contains(out.String(), "Table E7") {
		t.Errorf("missing tables:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "completed in") {
		t.Error("missing timing lines")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment must error")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
}

func TestJSONExport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real micro-benchmarks")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "E1", "-json", dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one BENCH_<date>.json, got %v (%v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "E1" || rep.Experiments[0].WallMS <= 0 {
		t.Errorf("experiment timings = %+v", rep.Experiments)
	}
	if len(rep.Micro) != 3 {
		t.Fatalf("micro benches = %+v, want 3", rep.Micro)
	}
	for _, m := range rep.Micro {
		if m.NsPerOp <= 0 || m.AllocsPerOp <= 0 {
			t.Errorf("degenerate micro bench %+v", m)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "E1", "-csv", dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "E1_table1.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(data), "family,n,m") {
		t.Errorf("csv header missing:\n%s", data)
	}
}
