// Command sectorbench runs the reproduction experiments (E1–E10) and the
// extension/ablation experiments (E11+) and prints their tables and
// figures.
//
// Usage:
//
//	sectorbench               # run everything at full size
//	sectorbench -exp E1,E7    # a subset
//	sectorbench -exp none     # skip experiments (with -json or -compare)
//	sectorbench -quick        # reduced sizes (the test configuration)
//	sectorbench -list         # list experiments and the claims they test
//	sectorbench -json .       # also write a BENCH_<date>.json summary
//	sectorbench -exp none -compare BENCH_2026-08-08.json -compare-metric allocs
//	                          # gate micro benchmarks against a baseline;
//	                          # exits non-zero on a >25% regression or a
//	                          # benchmark with no baseline entry (override
//	                          # the latter with -compare-allow-missing)
//	sectorbench -exp none -json . -big
//	                          # additionally run the n=1M tier (engine
//	                          # prewarm + baseline solve); minutes of wall
//	                          # clock, meant for manual/nightly runs, not
//	                          # per-PR CI
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sectorpack/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sectorbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sectorbench", flag.ContinueOnError)
	fs.SetOutput(out)
	expFlag := fs.String("exp", "", "comma-separated experiment ids (default all)")
	quick := fs.Bool("quick", false, "reduced sizes and trial counts")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	list := fs.Bool("list", false, "list experiments and exit")
	csvDir := fs.String("csv", "", "also write each table as CSV into this directory")
	jsonDir := fs.String("json", "", "write a BENCH_<date>.json benchmark summary into this directory")
	comparePath := fs.String("compare", "", "gate the micro benchmarks against this BENCH_<date>.json baseline (>25% regression exits non-zero)")
	compareMetric := fs.String("compare-metric", "both", "which -compare measurements gate: allocs (deterministic, for CI), ns, or both")
	compareAllowMissing := fs.Bool("compare-allow-missing", false, "report, rather than fail on, benchmarks with no baseline entry (for landing new benchmarks before the baseline is regenerated)")
	big := fs.Bool("big", false, "include the n=1M tier in -json/-compare micro benchmarks (minutes of wall clock; manual/nightly runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}
	ids := experiments.IDs()
	if *expFlag == "none" {
		ids = nil // benchmark-only runs: -json or -compare without experiments
	} else if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
	}
	opt := experiments.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	var timings []expTiming
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		rep, err := experiments.Run(id, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		timings = append(timings, expTiming{ID: id, WallMS: float64(elapsed.Microseconds()) / 1000})
		fmt.Fprint(out, rep.Render())
		fmt.Fprintf(out, "(%s completed in %v)\n\n", id, elapsed.Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			for k, tb := range rep.Tables {
				name := fmt.Sprintf("%s_table%d.csv", id, k+1)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(tb.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
	}
	if *jsonDir != "" {
		path, err := writeBenchJSON(*jsonDir, *quick, *big, timings)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "benchmark summary written to %s\n", path)
	}
	if *comparePath != "" {
		if err := compareBenchmarks(out, *comparePath, *compareMetric, *big, *compareAllowMissing); err != nil {
			return err
		}
	}
	return nil
}
