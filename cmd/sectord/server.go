// Command sectord serves sector-packing solves over HTTP: POST an
// instance envelope to /solve and get the solution back as JSON. It is the
// repository's serving layer — every solver in the core registry is
// reachable by name, each request runs under a deadline derived from the
// request context, and load beyond the configured concurrency cap is shed
// with 429 instead of queued.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/exact"
	"sectorpack/internal/model"
)

// Config tunes the daemon.
type Config struct {
	// Timeout is the per-request solve deadline. Zero means no server-side
	// deadline (the client's context still applies).
	Timeout time.Duration
	// MaxInflight caps concurrent solves; requests beyond it get 429.
	// Zero means DefaultMaxInflight.
	MaxInflight int
	// Allowed restricts which solver names requests may use; empty allows
	// every registered solver.
	Allowed []string
	// Seed is the default Options.Seed when the request omits one.
	Seed int64
	// MaxTuples caps the exact solver's orientation-tuple budget per
	// request (Options.ExactLimits); zero keeps exact.DefaultMaxTuples.
	MaxTuples int64
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// DrainTimeout bounds graceful shutdown; zero means 5s.
	DrainTimeout time.Duration
}

// DefaultMaxInflight is the concurrency cap when Config leaves it zero.
const DefaultMaxInflight = 4

// maxRequestBytes bounds the request body read (instances are small; this
// guards the decoder, not memory accounting).
const maxRequestBytes = 32 << 20

// Server is the sectord HTTP service. Metrics are per-Server (unpublished
// expvar vars, served by the /debug/vars handler below) so tests can build
// many Servers in one process without tripping expvar's duplicate-publish
// panic.
type Server struct {
	cfg     Config
	sem     chan struct{}
	mux     *http.ServeMux
	allowed map[string]bool

	requests      expvar.Int // total /solve requests
	solved        expvar.Int // completed successfully
	cancellations expvar.Int // ended by deadline or client disconnect
	shed          expvar.Int // rejected with 429
	failures      expvar.Int // bad requests and solver errors

	latencyMu sync.Mutex
	latency   map[string]*latencyHist // per-solver
}

// NewServer builds a Server from the config.
func NewServer(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInflight),
		mux:     http.NewServeMux(),
		latency: map[string]*latencyHist{},
	}
	if len(cfg.Allowed) > 0 {
		s.allowed = make(map[string]bool, len(cfg.Allowed))
		for _, name := range cfg.Allowed {
			s.allowed[name] = true
		}
	}
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the HTTP handler tree (for httptest and for Serve).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: in-flight solves keep running (their request contexts stay
// live) until done or until DrainTimeout passes.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// In-flight request contexts are per-connection, not children of ctx:
	// graceful drain lets running solves finish. If the drain deadline
	// passes, Close tears the connections down, which cancels the request
	// contexts and aborts the solves.
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			srv.Close()
			return err
		}
		<-errc // http.ErrServerClosed
		return nil
	}
}

// solveRequest is the /solve body: the model.WriteJSON envelope plus
// request-level knobs.
type solveRequest struct {
	Solver        string          `json:"solver"`
	Seed          *int64          `json:"seed,omitempty"`
	TimeoutMillis int64           `json:"timeout_ms,omitempty"`
	FormatVersion int             `json:"format_version"`
	Instance      *model.Instance `json:"instance"`
}

// solveResponse is the /solve reply.
type solveResponse struct {
	Solver      string    `json:"solver"`
	Algorithm   string    `json:"algorithm"`
	Profit      int64     `json:"profit"`
	UpperBound  float64   `json:"upper_bound,omitempty"`
	Orientation []float64 `json:"orientation"`
	Owner       []int     `json:"owner"`
	ElapsedMS   float64   `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.failures.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	// Shed before reading the body: a saturated server should refuse work
	// as cheaply as possible.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server at capacity"})
		return
	}

	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decode request: " + err.Error()})
		return
	}
	if req.FormatVersion != 1 {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unsupported format_version %d (want 1)", req.FormatVersion)})
		return
	}
	if req.Instance == nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "request missing instance"})
		return
	}
	req.Instance.Normalize()
	if err := req.Instance.Validate(); err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid instance: " + err.Error()})
		return
	}
	name := req.Solver
	if name == "" {
		name = "auto"
	}
	if s.allowed != nil && !s.allowed[name] {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("solver %q not allowed (allowed: %v)", name, s.cfg.Allowed)})
		return
	}
	solver, err := core.Get(name)
	if err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	ctx := r.Context()
	timeout := s.cfg.Timeout
	if req.TimeoutMillis > 0 {
		if t := time.Duration(req.TimeoutMillis) * time.Millisecond; timeout <= 0 || t < timeout {
			timeout = t
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	opt := core.Options{Seed: s.cfg.Seed, ExactLimits: exact.Limits{MaxTuples: s.cfg.MaxTuples}}
	if req.Seed != nil {
		opt.Seed = *req.Seed
	}
	start := time.Now()
	sol, err := solver(ctx, req.Instance, opt)
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.cancellations.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "solve aborted: " + err.Error()})
			return
		}
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "solve failed: " + err.Error()})
		return
	}
	s.solved.Add(1)
	s.observeLatency(name, elapsed)
	writeJSON(w, http.StatusOK, solveResponse{
		Solver:      name,
		Algorithm:   sol.Algorithm,
		Profit:      sol.Profit,
		UpperBound:  sol.UpperBound,
		Orientation: sol.Assignment.Orientation,
		Owner:       sol.Assignment.Owner,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	})
}

// --- metrics ---

// latencyHist is a power-of-two millisecond histogram implementing
// expvar.Var.
type latencyHist struct {
	mu      sync.Mutex
	count   int64
	totalMS float64
	// buckets[i] counts solves with latency < 2^i ms; the last bucket is
	// the overflow.
	buckets [12]int64
}

func (h *latencyHist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(h.buckets)-1 && ms >= float64(int64(1)<<i) {
		i++
	}
	h.mu.Lock()
	h.count++
	h.totalMS += ms
	h.buckets[i]++
	h.mu.Unlock()
}

// String renders the histogram as JSON, satisfying expvar.Var.
func (h *latencyHist) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := map[string]any{"count": h.count, "total_ms": h.totalMS}
	hist := map[string]int64{}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if i == len(h.buckets)-1 {
			hist[">="+strconv.Itoa(1<<(i-1))+"ms"] = c
		} else {
			hist["<"+strconv.Itoa(1<<i)+"ms"] = c
		}
	}
	b["buckets"] = hist
	out, _ := json.Marshal(b)
	return string(out)
}

func (s *Server) observeLatency(solver string, d time.Duration) {
	s.latencyMu.Lock()
	h, ok := s.latency[solver]
	if !ok {
		h = &latencyHist{}
		s.latency[solver] = h
	}
	s.latencyMu.Unlock()
	h.observe(d)
}

// handleVars serves this Server's expvar counters in the standard
// /debug/vars wire format. The vars are deliberately not published to the
// global expvar registry — expvar.Publish panics on duplicate names, which
// would fire the second time a test (or an embedding program) builds a
// Server.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	vars := []struct {
		name string
		v    expvar.Var
	}{
		{"sectord.requests", &s.requests},
		{"sectord.solved", &s.solved},
		{"sectord.cancellations", &s.cancellations},
		{"sectord.shed", &s.shed},
		{"sectord.failures", &s.failures},
	}
	fmt.Fprintf(w, "{\n")
	first := true
	for _, kv := range vars {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.name, kv.v.String())
	}
	s.latencyMu.Lock()
	names := make([]string, 0, len(s.latency))
	for name := range s.latency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, ",\n%q: %s", "sectord.latency."+name, s.latency[name].String())
	}
	s.latencyMu.Unlock()
	fmt.Fprintf(w, "\n}\n")
}
