// Tests for the sectord command front: flag validation and the
// signal-context run loop around the internal/daemon server.
package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunFlagValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	if err := run(ctx, []string{"-solvers", "greedy,nope"}, &buf); err == nil {
		t.Error("run accepted an unknown solver in the allowlist")
	}
	if err := run(ctx, []string{"-badflag"}, &buf); err == nil {
		t.Error("run accepted an unknown flag")
	}
}

// syncBuffer lets the test poll the daemon's log output while the daemon
// goroutine is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunServesAndStopsOnSignalContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var buf syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &buf) }()
	// Wait for the listen log line to learn the port.
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never logged its address: %q", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
		if i := strings.Index(buf.String(), "http://"); i >= 0 {
			rest := buf.String()[i+len("http://"):]
			if j := strings.IndexAny(rest, " \n"); j > 0 {
				url = "http://" + rest[:j]
			}
		}
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after ctx cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after ctx cancel")
	}
}
