// Command sectord serves sector-packing solves over HTTP. The daemon
// itself — routes, shedding, caching, sessions, durability — lives in
// internal/daemon; this is the flag-parsing front that builds a
// daemon.Config and runs it until SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/daemon"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sectord:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("sectord", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", "localhost:8377", "listen address")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request solve deadline (0 = none)")
	maxInflight := fs.Int("max-inflight", daemon.DefaultMaxInflight, "concurrent solves before shedding 429")
	allowed := fs.String("solvers", "", "comma-separated solver allowlist (empty = all: "+strings.Join(core.Names(), ", ")+")")
	seed := fs.Int64("seed", 1, "default seed when requests omit one")
	maxTuples := fs.Int64("max-tuples", 200_000, "per-request exact-solver tuple budget (0 = solver default)")
	cacheBytes := fs.Int64("cache-bytes", 0, "solve-cache budget in bytes (0 = 64 MiB default, negative = disable caching)")
	sessionMax := fs.Int("session-max", daemon.DefaultSessionMax, "live delta-solve session cap before shedding 429")
	sessionTTL := fs.Duration("session-ttl", daemon.DefaultSessionTTL, "evict sessions idle longer than this")
	snapshotPath := fs.String("cache-snapshot", "", "persist the solve cache to this file across restarts (empty = off)")
	snapshotInterval := fs.Duration("cache-snapshot-interval", daemon.DefaultSnapshotInterval, "background cache-snapshot cadence")
	journalDir := fs.String("session-journal", "", "journal sessions to <dir>/<id>.journal and recover them at startup (empty = off)")
	fsyncEvery := fs.Int("session-fsync-every", 1, "journal group-commit window: fsync per this many deltas (1 = every delta)")
	pprofFlag := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	shard := fs.String("shard", "", "shard name stamped on every response as X-Sectord-Shard (empty = no header)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(logw, nil)
	case "json":
		handler = slog.NewJSONHandler(logw, nil)
	default:
		return fmt.Errorf("invalid -log-format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)
	cfg := daemon.Config{
		Timeout:      *timeout,
		MaxInflight:  *maxInflight,
		Seed:         *seed,
		MaxTuples:    *maxTuples,
		CacheBytes:   *cacheBytes,
		SessionMax:   *sessionMax,
		SessionTTL:   *sessionTTL,
		Pprof:        *pprofFlag,
		DrainTimeout: *drain,
		Logger:       logger,

		SnapshotPath:     *snapshotPath,
		SnapshotInterval: *snapshotInterval,
		JournalDir:       *journalDir,
		JournalSyncEvery: *fsyncEvery,
		ShardName:        *shard,
	}
	if *allowed != "" {
		for _, name := range strings.Split(*allowed, ",") {
			name = strings.TrimSpace(name)
			if _, err := core.Get(name); err != nil {
				return err
			}
			cfg.Allowed = append(cfg.Allowed, name)
		}
	}
	srv := daemon.NewServer(cfg)
	// Warm-load persisted state before accepting connections, so the first
	// request already sees the restored cache and recovered sessions.
	if err := srv.Restore(ctx); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening",
		slog.String("url", "http://"+ln.Addr().String()),
		slog.String("solvers", strings.Join(core.Names(), ",")))
	err = srv.Serve(ctx, ln)
	if err == nil {
		logger.Info("shut down cleanly")
	}
	return err
}
