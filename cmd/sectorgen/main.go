// Command sectorgen generates synthetic sector-packing instance files.
//
// Usage:
//
//	sectorgen -family hotspot -n 200 -m 4 -seed 7 -out instance.json
//	sectorgen -count 16 -out batch.json   # multi-instance batch envelope
//	sectorgen -tier 100k -out big.json    # benchmark tier preset
//	sectorgen -tier 100k-churn -churn -churn-steps 20 -out trace.json
//	                                      # churn trace for delta sessions
//
// Families: uniform, hotspot, rings, zipf, adversarial. Variants: sectors,
// angles, disjoint. Tiers (-tier): the named large-scale presets from
// gen.TierNames ("100k", "100k-churn", "1m"); a tier fixes the workload
// shape, and any explicitly set flag (-n, -m, -family, ...) overrides the
// preset field. With -count > 1 the output is the batch envelope consumed
// by `sectorpack -batch` and the sectord /solve/batch endpoint; instance k
// uses seed+k. With -churn the output is a churn-trace envelope (base
// instance + delta stream) for the delta-session workload: replay it
// through internal/session or the sectord /session endpoints; -churn-*
// flags shape the stream (steps, per-step rate, localized radial pockets,
// periodic capacity changes).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sectorgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sectorgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "uniform", "workload family: uniform, hotspot, rings, zipf, adversarial")
	variant := fs.String("variant", "sectors", "problem variant: sectors, angles, disjoint")
	n := fs.Int("n", 100, "number of customers")
	m := fs.Int("m", 3, "number of antennas")
	seed := fs.Int64("seed", 1, "generator seed")
	rho := fs.Float64("rho", 0, "antenna width in radians (0 = default π/3)")
	tight := fs.Float64("tightness", 0, "total demand / total capacity (0 = default 1.5)")
	unit := fs.Bool("unit", false, "force unit demands")
	tier := fs.String("tier", "", "benchmark tier preset (100k, 100k-churn, 1m); explicitly set flags override preset fields")
	count := fs.Int("count", 1, "number of instances; > 1 writes a batch envelope (instance k uses seed+k)")
	churn := fs.Bool("churn", false, "emit a churn trace (base instance + delta stream) instead of a plain instance")
	churnSteps := fs.Int("churn-steps", 8, "number of deltas in the trace")
	churnRate := fs.Float64("churn-rate", 0.01, "fraction of customers churned per delta")
	churnLocalized := fs.Bool("churn-localized", true, "concentrate each delta in one radial pocket (what delta sessions exploit)")
	churnPocket := fs.Float64("churn-pocket", 0.1, "area fraction a localized pocket covers")
	churnCapEvery := fs.Int("churn-capacity-every", 0, "add an antenna capacity change to every k-th delta (0 = never)")
	outPath := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *count < 1 {
		return fmt.Errorf("-count must be >= 1, got %d", *count)
	}
	if *churn && *count > 1 {
		return fmt.Errorf("-churn emits a single trace; it cannot be combined with -count %d", *count)
	}
	var v model.Variant
	switch *variant {
	case "sectors":
		v = model.Sectors
	case "angles":
		v = model.Angles
	case "disjoint":
		v = model.DisjointAngles
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	cfg := gen.Config{
		Family:     gen.Family(*family),
		N:          *n,
		M:          *m,
		Rho:        *rho,
		Tightness:  *tight,
		UnitDemand: *unit,
	}
	if *tier != "" {
		preset, err := gen.Tier(*tier)
		if err != nil {
			return err
		}
		// The preset supplies the workload shape; flags the caller set
		// explicitly win over it (fs.Visit only sees set flags).
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["family"] {
			preset.Family = gen.Family(*family)
		}
		if set["n"] {
			preset.N = *n
		}
		if set["m"] {
			preset.M = *m
		}
		if set["rho"] {
			preset.Rho = *rho
		}
		if set["tightness"] {
			preset.Tightness = *tight
		}
		if set["unit"] {
			preset.UnitDemand = *unit
		}
		cfg = preset
	}
	cfg.Variant = v
	if *churn {
		cfg.Seed = *seed
		tr, err := gen.GenerateTrace(gen.ChurnConfig{
			Base:          cfg,
			Steps:         *churnSteps,
			Rate:          *churnRate,
			Localized:     *churnLocalized,
			PocketFrac:    *churnPocket,
			CapacityEvery: *churnCapEvery,
		})
		if err != nil {
			return err
		}
		if *outPath == "" {
			return model.WriteTraceJSON(stdout, tr)
		}
		if err := model.SaveTraceFile(*outPath, tr); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s: %s (n=%d, m=%d, %d deltas)\n",
			*outPath, tr.Name, tr.Instance.N(), tr.Instance.M(), len(tr.Deltas))
		return nil
	}
	ins := make([]*model.Instance, *count)
	for k := range ins {
		c := cfg
		c.Seed = *seed + int64(k)
		in, err := gen.Generate(c)
		if err != nil {
			return err
		}
		ins[k] = in
	}
	if *count == 1 {
		in := ins[0]
		if *outPath == "" {
			return model.WriteJSON(stdout, in)
		}
		if err := model.SaveFile(*outPath, in); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s: %s (n=%d, m=%d)\n", *outPath, in.Name, in.N(), in.M())
		return nil
	}
	if *outPath == "" {
		return model.WriteBatchJSON(stdout, ins)
	}
	if err := model.SaveBatchFile(*outPath, ins); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s: %d instances (n=%d, m=%d each)\n", *outPath, len(ins), *n, *m)
	return nil
}
