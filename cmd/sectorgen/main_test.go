package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"sectorpack/internal/model"
)

func TestGenerateToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-family", "uniform", "-n", "10", "-m", "2"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	in, err := model.ReadJSON(&stdout)
	if err != nil {
		t.Fatalf("output is not a valid instance: %v", err)
	}
	if in.N() != 10 || in.M() != 2 {
		t.Fatalf("shape %dx%d", in.N(), in.M())
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-family", "zipf", "-variant", "angles", "-n", "15", "-m", "3", "-unit", "-out", path}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr.String(), "wrote") {
		t.Error("expected confirmation on stderr")
	}
	in, err := model.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !in.UnitDemand() {
		t.Error("-unit must force unit demands")
	}
	if in.Variant != model.Angles {
		t.Errorf("variant = %v", in.Variant)
	}
}

func TestGenerateVariants(t *testing.T) {
	for _, v := range []string{"sectors", "angles", "disjoint"} {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-variant", v, "-n", "5", "-m", "2"}, &stdout, &stderr); err != nil {
			t.Errorf("variant %s: %v", v, err)
		}
	}
}

func TestGenerateCountWritesBatchEnvelope(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-count", "3", "-n", "8", "-m", "2", "-seed", "5"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	ins, err := model.ReadBatchJSON(&stdout)
	if err != nil {
		t.Fatalf("output is not a batch envelope: %v", err)
	}
	if len(ins) != 3 {
		t.Fatalf("envelope holds %d instances, want 3", len(ins))
	}
	names := map[string]bool{}
	for _, in := range ins {
		if in.N() != 8 || in.M() != 2 {
			t.Errorf("instance %s shape %dx%d, want 8x2", in.Name, in.N(), in.M())
		}
		names[in.Name] = true
	}
	// Instance k uses seed+k, so the three instances must be distinct.
	if len(names) != 3 {
		t.Errorf("batch instances share names %v — seeds not varied?", names)
	}

	path := filepath.Join(t.TempDir(), "batch.json")
	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-count", "2", "-n", "6", "-m", "2", "-out", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run -out: %v", err)
	}
	if !strings.Contains(stderr.String(), "2 instances") {
		t.Errorf("confirmation %q does not report the count", stderr.String())
	}
	if ins, err := model.LoadBatchFile(path); err != nil || len(ins) != 2 {
		t.Errorf("LoadBatchFile: %d instances, err %v", len(ins), err)
	}
}

func TestGenerateCountOneKeepsSingleEnvelope(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-count", "1", "-n", "5", "-m", "2"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := model.ReadJSON(&stdout); err != nil {
		t.Fatalf("-count 1 output is not a single-instance envelope: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-variant", "bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown variant must error")
	}
	if err := run([]string{"-family", "bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown family must error")
	}
	if err := run([]string{"-nope"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag must error")
	}
	if err := run([]string{"-count", "0"}, &stdout, &stderr); err == nil {
		t.Error("-count 0 must error")
	}
}

func TestGenerateTierPreset(t *testing.T) {
	// -n overrides the preset's N (a full 100k generation is too slow for
	// a unit test); the preset must still supply M=16 and its family.
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-tier", "100k", "-n", "50"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	in, err := model.ReadJSON(&stdout)
	if err != nil {
		t.Fatalf("output is not a valid instance: %v", err)
	}
	if in.N() != 50 || in.M() != 16 {
		t.Fatalf("shape %dx%d, want 50x16 (-n override + preset m)", in.N(), in.M())
	}

	var out2, err2 bytes.Buffer
	if err := run([]string{"-tier", "bogus"}, &out2, &err2); err == nil {
		t.Error("unknown tier must error")
	}
}

func TestGenerateChurnTrace(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-churn", "-n", "60", "-m", "4", "-seed", "3", "-churn-steps", "5", "-churn-rate", "0.05", "-churn-capacity-every", "2"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	tr, err := model.ReadTraceJSON(&stdout)
	if err != nil {
		t.Fatalf("output is not a valid trace: %v", err)
	}
	if tr.Instance.N() != 60 || len(tr.Deltas) != 5 {
		t.Fatalf("trace shape n=%d deltas=%d, want 60/5", tr.Instance.N(), len(tr.Deltas))
	}
	capChanges := 0
	for _, d := range tr.Deltas {
		capChanges += len(d.SetCapacity)
	}
	if capChanges == 0 {
		t.Error("-churn-capacity-every produced no capacity changes")
	}

	// Deterministic: the same flags reproduce the same trace.
	var again bytes.Buffer
	if err := run(args, &again, &stderr); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := model.WriteTraceJSON(&first, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := model.ReadTraceJSON(&again)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := model.WriteTraceJSON(&second, tr2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("same flags produced different traces")
	}

	// File output goes through the atomic writer and confirms on stderr.
	path := filepath.Join(t.TempDir(), "trace.json")
	stderr.Reset()
	if err := run([]string{"-churn", "-n", "30", "-m", "2", "-out", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run -out: %v", err)
	}
	if !strings.Contains(stderr.String(), "deltas") {
		t.Errorf("confirmation %q does not report the delta count", stderr.String())
	}
	if tr, err := model.LoadTraceFile(path); err != nil || len(tr.Deltas) != 8 {
		t.Errorf("LoadTraceFile: %d deltas, err %v (want the default 8)", len(tr.Deltas), err)
	}

	// -churn is a single-trace mode.
	if err := run([]string{"-churn", "-count", "2"}, &stdout, &stderr); err == nil {
		t.Error("-churn with -count > 1 must error")
	}
}
