package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"sectorpack/internal/model"
)

func TestGenerateToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-family", "uniform", "-n", "10", "-m", "2"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	in, err := model.ReadJSON(&stdout)
	if err != nil {
		t.Fatalf("output is not a valid instance: %v", err)
	}
	if in.N() != 10 || in.M() != 2 {
		t.Fatalf("shape %dx%d", in.N(), in.M())
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-family", "zipf", "-variant", "angles", "-n", "15", "-m", "3", "-unit", "-out", path}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr.String(), "wrote") {
		t.Error("expected confirmation on stderr")
	}
	in, err := model.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !in.UnitDemand() {
		t.Error("-unit must force unit demands")
	}
	if in.Variant != model.Angles {
		t.Errorf("variant = %v", in.Variant)
	}
}

func TestGenerateVariants(t *testing.T) {
	for _, v := range []string{"sectors", "angles", "disjoint"} {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-variant", v, "-n", "5", "-m", "2"}, &stdout, &stderr); err != nil {
			t.Errorf("variant %s: %v", v, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-variant", "bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown variant must error")
	}
	if err := run([]string{"-family", "bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown family must error")
	}
	if err := run([]string{"-nope"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag must error")
	}
}
