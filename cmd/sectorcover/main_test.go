package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	in := gen.MustGenerate(gen.Config{
		Family: gen.Uniform, Variant: model.Sectors, Seed: 3, N: 8, M: 1, Range: 6,
	})
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := model.SaveFile(path, in); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCoverCLI(t *testing.T) {
	path := writeInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-rho", "1.5", "-range", "10", "-exact"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "greedy cover:") || !strings.Contains(s, "exact minimum:") {
		t.Errorf("output incomplete:\n%s", s)
	}
	if !strings.Contains(s, "overshoot") {
		t.Errorf("missing overshoot line:\n%s", s)
	}
}

func TestCoverCLIErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing -in must error")
	}
	if err := run(context.Background(), []string{"-in", "/missing.json"}, &out); err == nil {
		t.Error("missing file must error")
	}
	path := writeInstance(t)
	// range too small: some customer unreachable
	if err := run(context.Background(), []string{"-in", path, "-rho", "1", "-range", "0.001"}, &out); err == nil {
		t.Error("unreachable customers must error")
	}
}
