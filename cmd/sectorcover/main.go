// Command sectorcover solves the covering companion problem: given an
// instance file (only its customers are used) and an antenna type, find
// the minimum number of antennas that serves every customer.
//
// Usage:
//
//	sectorcover -in instance.json -rho 1.2 -range 7 -capacity 20 [-exact]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"sectorpack/internal/cover"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sectorcover:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sectorcover", flag.ContinueOnError)
	fs.SetOutput(out)
	inPath := fs.String("in", "", "instance JSON file (customers only; required)")
	rho := fs.Float64("rho", 1.0, "antenna width in radians")
	rng := fs.Float64("range", 0, "antenna radial reach (0 = unbounded)")
	capacity := fs.Int64("capacity", 1<<40, "per-antenna capacity")
	exact := fs.Bool("exact", false, "also compute the exact minimum (small instances)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}
	in, err := model.LoadFile(*inPath)
	if err != nil {
		return err
	}
	typ := cover.AntennaType{Rho: *rho, Range: *rng, Capacity: *capacity}
	g, err := cover.Greedy(ctx, in.Customers, typ)
	if err != nil {
		return err
	}
	if err := cover.Check(in.Customers, typ, g); err != nil {
		return fmt.Errorf("internal error: greedy cover invalid: %w", err)
	}
	fmt.Fprintf(out, "greedy cover: %d antennas for %d customers\n", g.K(), in.N())
	for p, pl := range g.Placements {
		fmt.Fprintf(out, "  antenna %2d at α=%7.2f° serving %d customers\n",
			p, geom.Degrees(pl.Alpha), len(pl.Customers))
	}
	if *exact {
		e, err := cover.Exact(ctx, in.Customers, typ, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "exact minimum: %d antennas (greedy overshoot %d)\n", e.K(), g.K()-e.K())
	}
	return nil
}
